#include "dist/coordinator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <memory>
#include <thread>

#include <poll.h>

#include "dist/channel.hpp"
#include "dist/framing.hpp"
#include "dist/messages.hpp"
#include "runtime/crc32.hpp"
#include "runtime/durable_file.hpp"
#include "util/cancellation.hpp"
#include "util/log.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace nvff::dist {

namespace {

using Clock = std::chrono::steady_clock;

// Same async-signal-safe pattern as the runtime supervisor: the handler
// stores the signal number, the event loop polls it. (The supervisor's flag
// is internal to its translation unit; serve runs instead of, never inside,
// run_supervised, so a private copy cannot double-fire.)
std::atomic<int> g_serveSignal{0};
void on_serve_signal(int sig) {
  g_serveSignal.store(sig, std::memory_order_relaxed);
}

class SignalScope {
public:
  explicit SignalScope(bool install) : installed_(install) {
    if (!installed_) return;
    g_serveSignal.store(0, std::memory_order_relaxed);
    prevInt_ = std::signal(SIGINT, on_serve_signal);
    prevTerm_ = std::signal(SIGTERM, on_serve_signal);
  }
  ~SignalScope() {
    if (!installed_) return;
    std::signal(SIGINT, prevInt_);
    std::signal(SIGTERM, prevTerm_);
  }
  SignalScope(const SignalScope&) = delete;
  SignalScope& operator=(const SignalScope&) = delete;

private:
  bool installed_;
  void (*prevInt_)(int) = SIG_DFL;
  void (*prevTerm_)(int) = SIG_DFL;
};

/// One shard of the trial range. Owner tracking lives here (not in the
/// connection) so a dropped connection and a stalled one share the same
/// re-dispatch path.
struct Shard {
  enum class State : std::uint8_t {
    Pending, ///< waiting for a requester
    Remote,  ///< assigned to a worker connection
    Local,   ///< claimed by an in-process executor thread
    Done,    ///< merged into the campaign state
  };
  std::vector<int> ids;
  State state = State::Pending;
  long owner = -1;               ///< connection id when Remote
  int lastProgress = 0;          ///< heartbeat trialsDone high-water mark
  Clock::time_point lastAdvance{}; ///< when progress last moved
};

/// Campaign bookkeeping shared between the event-loop thread and the local
/// executor threads, annotated for clang's thread-safety analysis.
struct ServeState {
  Mutex mu;
  std::vector<Shard> shards GUARDED_BY(mu);
  std::vector<char> done GUARDED_BY(mu);
  int trialsDone GUARDED_BY(mu) = 0;
  int shardsMerged GUARDED_BY(mu) = 0;
  long timeouts GUARDED_BY(mu) = 0;
  /// Shards merged since the last durable commit (checkpoint cadence).
  int dirtyShards GUARDED_BY(mu) = 0;
};

/// One connected worker. The coordinator never trusts a connection: every
/// message passes the frame CRC, the handshake pins protocol version and
/// config fingerprint, and any violation drops the connection (the shards
/// it held go back to pending).
struct Conn {
  explicit Conn(Socket s, long idIn) : sock(std::move(s)), id(idIn) {}
  Socket sock;
  long id;
  FrameDecoder decoder;
  bool ready = false; ///< handshake complete (Hello -> Welcome -> Ready)
  bool sendTimedOut = false; ///< a send deadline fired on this connection
};

/// Why a connection is being closed; drives shard re-dispatch + accounting.
enum class DropCause {
  Eof,
  FrameError,
  ProtocolError,
  SendFailed,
  SendTimeout, ///< peer stopped draining us — quarantine, not just drop
  Shutdown,
};

std::vector<int> collect_done_ids(const ServeState& state) REQUIRES(state.mu) {
  std::vector<int> ids;
  ids.reserve(static_cast<std::size_t>(state.trialsDone));
  for (std::size_t i = 0; i < state.done.size(); ++i)
    if (state.done[i]) ids.push_back(static_cast<int>(i));
  return ids;
}

} // namespace

ServeOutcome serve_campaign(CampaignEngine& engine,
                            const ServeOptions& options) {
  if (options.endpoint.empty() && options.localThreads <= 0)
    throw std::runtime_error(
        "serve: need an --endpoint for workers or --local-threads > 0");
  Endpoint endpoint;
  if (!options.endpoint.empty()) {
    std::string error;
    if (!parse_endpoint(options.endpoint, endpoint, error))
      throw std::runtime_error("serve: " + error);
  }
  if (options.shardSize < 1)
    throw std::runtime_error("serve: --shard-size must be >= 1");
  const int trials = engine.trials();
  if (trials <= 0) throw std::runtime_error("serve: campaign needs trials > 0");

  ServeOutcome outcome;
  outcome.trialsTotal = trials;

  ServeState state;
  {
    MutexLock lock(state.mu);
    state.done.assign(static_cast<std::size_t>(trials), 0);
  }

  // --- resume ---------------------------------------------------------------
  // The merged campaign state is a plain engine checkpoint, so resume walks
  // the same generations/quarantine path the single-process supervisor does
  // (shared helper — the two recovery paths cannot drift).
  const std::string& ckptPath = options.checkpointPath;
  if (!ckptPath.empty()) {
    runtime::ResumeResult resumed = runtime::resume_from_checkpoint(
        ckptPath, [&](const std::string& payload) { return engine.merge(payload); });
    outcome.quarantined = std::move(resumed.quarantined);
    MutexLock lock(state.mu);
    for (const int id : resumed.ids) {
      if (id < 0 || id >= trials) continue;
      if (!state.done[static_cast<std::size_t>(id)]) {
        state.done[static_cast<std::size_t>(id)] = 1;
        ++state.trialsDone;
      }
    }
    outcome.trialsResumed = state.trialsDone;
  }
  if (options.requireResume && outcome.trialsResumed == 0)
    throw std::runtime_error("--resume: no usable checkpoint at '" + ckptPath +
                             "'");

  // --- shard the remaining trials -------------------------------------------
  {
    MutexLock lock(state.mu);
    Shard current;
    for (int t = 0; t < trials; ++t) {
      if (state.done[static_cast<std::size_t>(t)]) continue;
      current.ids.push_back(t);
      if (static_cast<int>(current.ids.size()) >= options.shardSize) {
        state.shards.push_back(std::move(current));
        current = Shard{};
      }
    }
    if (!current.ids.empty()) state.shards.push_back(std::move(current));
    outcome.shardsTotal = static_cast<int>(state.shards.size());
  }

  const std::string blob = engine.config_blob();
  const std::uint32_t blobCrc = runtime::crc32(blob);

  // --- listener -------------------------------------------------------------
  Socket listener;
  if (!options.endpoint.empty()) {
    std::string error;
    Endpoint bound;
    listener = Socket::listen_endpoint(endpoint, error, bound);
    if (!listener.valid())
      throw std::runtime_error("serve: cannot listen on '" +
                               options.endpoint + "': " + error);
    outcome.boundEndpoint = bound.to_string();
    if (options.onListening) options.onListening(bound);
  }

  SignalScope signals(options.installSignalHandlers);
  std::atomic<bool> draining{false};
  std::atomic<bool> deadlineHit{false};
  CancelToken localCancel; // drains in-process executor threads

  const bool haveDeadline = options.deadlineSeconds > 0.0;
  const auto deadline =
      // DETLINT-ALLOW(DET001): wall-clock campaign budget — time-based by
      // spec; an interrupted serve prints no report, and resumed trials
      // recompute bit-identically from counter-based RNG streams.
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             haveDeadline ? options.deadlineSeconds : 0.0));
  const auto stallBudget = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(options.stallTimeoutSeconds > 0.0
                                        ? options.stallTimeoutSeconds
                                        : 0.0));

  // --- local executor threads -----------------------------------------------
  // Coordinator-only fallback and graceful degradation in one mechanism:
  // these threads pull from the same shard table the workers do, so losing
  // every worker merely slows the campaign down to local throughput (and
  // with no socket at all, serve degenerates to a supervised local run).
  std::vector<std::thread> localRunners;
  for (int i = 0; i < options.localThreads; ++i) {
    localRunners.emplace_back([&] {
      for (;;) {
        if (localCancel.cancelled()) return;
        int shardIndex = -1;
        std::vector<int> ids;
        {
          MutexLock lock(state.mu);
          for (std::size_t s = 0; s < state.shards.size(); ++s) {
            if (state.shards[s].state != Shard::State::Pending) continue;
            shardIndex = static_cast<int>(s);
            state.shards[s].state = Shard::State::Local;
            ids = state.shards[s].ids;
            break;
          }
        }
        if (shardIndex < 0) {
          // Nothing pending: either the campaign is finishing or all work
          // is out with workers (which may yet fail — stay available).
          bool allDone;
          {
            MutexLock lock(state.mu);
            allDone = state.trialsDone >= trials;
          }
          if (allDone) return;
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          continue;
        }
        long shardTimeouts = 0;
        std::vector<int> finished;
        finished.reserve(ids.size());
        for (const int id : ids) {
          if (localCancel.cancelled()) break;
          const runtime::TrialStatus status = engine.run_trial(id, localCancel);
          if (status == runtime::TrialStatus::Cancelled) continue;
          if (status == runtime::TrialStatus::Timeout) ++shardTimeouts;
          finished.push_back(id);
        }
        MutexLock lock(state.mu);
        Shard& shard = state.shards[static_cast<std::size_t>(shardIndex)];
        if (static_cast<int>(finished.size()) ==
            static_cast<int>(ids.size())) {
          shard.state = Shard::State::Done;
          ++state.shardsMerged;
          ++state.dirtyShards;
        } else {
          // Drained mid-shard: the completed prefix still counts (the done
          // mask is per-trial); the remainder re-runs after resume.
          shard.state = Shard::State::Pending;
        }
        state.timeouts += shardTimeouts;
        for (const int id : finished) {
          if (!state.done[static_cast<std::size_t>(id)]) {
            state.done[static_cast<std::size_t>(id)] = 1;
            ++state.trialsDone;
          }
        }
      }
    });
  }

  // --- helpers shared by the event loop -------------------------------------
  std::vector<std::unique_ptr<Conn>> conns;
  long nextConnId = 0;

  const int sendTimeoutMs =
      options.sendTimeoutMs > 0 ? options.sendTimeoutMs : kDefaultSendTimeoutMs;
  auto send_frame = [&](Conn& conn, MsgType type,
                        const std::string& payload) -> bool {
    const SendStatus status =
        conn.sock.send_all(encode_frame(type, payload), sendTimeoutMs);
    if (status == SendStatus::Ok) return true;
    if (status == SendStatus::Timeout) {
      conn.sendTimedOut = true;
      ++outcome.sendTimeouts;
    }
    return false;
  };

  // Returns shards owned by `connId` to the pending queue.
  auto release_shards = [&](long connId) {
    MutexLock lock(state.mu);
    for (Shard& shard : state.shards) {
      if (shard.state == Shard::State::Remote && shard.owner == connId) {
        shard.state = Shard::State::Pending;
        shard.owner = -1;
        ++outcome.redispatches;
      }
    }
  };

  auto drop_conn = [&](std::size_t index, DropCause cause,
                       const std::string& why) {
    Conn& conn = *conns[index];
    // A send deadline poisons the stream regardless of which cause the
    // caller named (handle_frame reports "send failed" as a protocol-level
    // drop) — promote it so the quarantine accounting is accurate.
    if (conn.sendTimedOut && cause != DropCause::Shutdown)
      cause = DropCause::SendTimeout;
    if (cause == DropCause::FrameError) ++outcome.framesRejected;
    if (conn.ready && cause != DropCause::Shutdown) {
      ++outcome.workersDropped;
      if (cause == DropCause::SendTimeout) {
        ++outcome.workersQuarantined;
        log_warn("serve: worker #" + std::to_string(conn.id) +
                 " quarantined (send deadline: " + why +
                 "); re-dispatching its shards");
      } else {
        log_warn("serve: worker #" + std::to_string(conn.id) + " dropped (" +
                 why + "); re-dispatching its shards");
      }
    }
    release_shards(conn.id);
    conns.erase(conns.begin() + static_cast<long>(index));
  };

  auto commit_merged = [&]() {
    if (ckptPath.empty()) return;
    std::vector<int> ids;
    {
      MutexLock lock(state.mu);
      ids = collect_done_ids(state);
      state.dirtyShards = 0;
    }
    runtime::commit_durable(ckptPath, engine.serialize(ids));
    outcome.checkpointWritten = true;
  };

  /// Answers a Ready frame: next pending shard, or Idle, or Shutdown once
  /// every trial is recorded. Returns false when the send failed.
  auto assign_work = [&](Conn& conn) -> bool {
    int shardIndex = -1;
    std::vector<int> ids;
    bool allDone = false;
    {
      MutexLock lock(state.mu);
      allDone = state.trialsDone >= trials;
      if (!allDone && !draining.load(std::memory_order_relaxed)) {
        for (std::size_t s = 0; s < state.shards.size(); ++s) {
          if (state.shards[s].state != Shard::State::Pending) continue;
          shardIndex = static_cast<int>(s);
          state.shards[s].state = Shard::State::Remote;
          state.shards[s].owner = conn.id;
          state.shards[s].lastProgress = 0;
          // DETLINT-ALLOW(DET001): arms the straggler watchdog for this
          // assignment; scheduling only, never campaign results.
          state.shards[s].lastAdvance = Clock::now();
          ids = state.shards[s].ids;
          break;
        }
      }
    }
    if (allDone || draining.load(std::memory_order_relaxed))
      return send_frame(conn, MsgType::Shutdown, "");
    if (shardIndex < 0) return send_frame(conn, MsgType::Idle, "");
    ShardAssignMsg assign;
    assign.shard = shardIndex;
    assign.ids = std::move(ids);
    return send_frame(conn, MsgType::ShardAssign, encode_shard_assign(assign));
  };

  /// Handles one decoded frame. Returns false when the connection must be
  /// dropped (protocol violation or send failure).
  auto handle_frame = [&](Conn& conn, MsgType type, const std::string& payload,
                          std::string& why) -> bool {
    switch (type) {
      case MsgType::Hello: {
        HelloMsg hello;
        if (!parse_hello(payload, hello)) {
          why = "malformed Hello";
          return false;
        }
        if (hello.protocolVersion != kProtocolVersion) {
          why = "protocol version skew (worker v" +
                std::to_string(hello.protocolVersion) + ")";
          send_frame(conn, MsgType::Error,
                     encode_error({"coordinator speaks protocol v" +
                                   std::to_string(kProtocolVersion)}));
          return false;
        }
        WelcomeMsg welcome;
        welcome.engine = engine.name();
        welcome.blob = blob;
        if (!send_frame(conn, MsgType::Welcome, encode_welcome(welcome))) {
          why = "send failed";
          return false;
        }
        return true;
      }
      case MsgType::Ready: {
        ReadyMsg ready;
        if (!parse_ready(payload, ready)) {
          why = "malformed Ready";
          return false;
        }
        // The worker rebuilt the config from the blob and re-serialized it;
        // CRC equality proves the two processes agree on every config field
        // (%.17g makes the rendering canonical). trials is double-checked
        // so a truncated blob cannot slip through a CRC collision.
        if (ready.fingerprintCrc != blobCrc || ready.trials != trials) {
          why = "config fingerprint mismatch (version or build skew)";
          send_frame(conn, MsgType::Error,
                     encode_error({"config fingerprint mismatch"}));
          return false;
        }
        if (!conn.ready) {
          conn.ready = true;
          ++outcome.workersSeen;
        }
        if (!assign_work(conn)) {
          why = "send failed";
          return false;
        }
        return true;
      }
      case MsgType::ShardResult: {
        ShardResultMsg result;
        if (!parse_shard_result(payload, result)) {
          why = "malformed ShardResult";
          return false;
        }
        bool merge = false;
        {
          MutexLock lock(state.mu);
          if (result.shard >= 0 &&
              result.shard < static_cast<int>(state.shards.size())) {
            Shard& shard = state.shards[static_cast<std::size_t>(result.shard)];
            // Merge remote and pending (re-dispatched straggler delivered
            // late) shards. Done: duplicate, identical by construction —
            // skip. Local: an executor thread is writing those very slots;
            // skipping avoids the only possible writer overlap, and costs
            // nothing because the local run produces the same bytes.
            // Eligible shards are reserved as Done BEFORE the lock drops so
            // no local executor can claim them while merge writes slots.
            if (shard.state == Shard::State::Remote ||
                shard.state == Shard::State::Pending) {
              shard.state = Shard::State::Done;
              shard.owner = -1;
              merge = true;
            }
          }
        }
        if (merge) {
          std::vector<int> ids;
          try {
            ids = engine.merge(result.blob);
          } catch (const std::exception& e) {
            // A blob that passed the frame CRC but fails the engine parse
            // (or its fingerprint) means a confused or skewed worker: undo
            // the reservation, drop the worker, keep the campaign. The
            // engine parses fully before filling any slot, so a rejected
            // blob leaves the slots untouched.
            {
              MutexLock lock(state.mu);
              Shard& shard =
                  state.shards[static_cast<std::size_t>(result.shard)];
              shard.state = Shard::State::Pending;
            }
            why = std::string("shard result rejected: ") + e.what();
            return false;
          }
          MutexLock lock(state.mu);
          Shard& shard = state.shards[static_cast<std::size_t>(result.shard)];
          for (const int id : ids) {
            if (id < 0 || id >= trials) continue;
            if (!state.done[static_cast<std::size_t>(id)]) {
              state.done[static_cast<std::size_t>(id)] = 1;
              ++state.trialsDone;
            }
          }
          // A partial result (worker serialized fewer trials than assigned)
          // must not retire the shard, or the missing trials would never
          // run: keep the merged prefix, requeue the remainder.
          bool complete = true;
          for (const int id : shard.ids)
            if (!state.done[static_cast<std::size_t>(id)]) complete = false;
          if (complete) {
            ++state.shardsMerged;
            ++state.dirtyShards;
          } else {
            shard.state = Shard::State::Pending;
          }
        }
        if (!assign_work(conn)) {
          why = "send failed";
          return false;
        }
        return true;
      }
      case MsgType::Heartbeat: {
        HeartbeatMsg hb;
        if (!parse_heartbeat(payload, hb)) {
          why = "malformed Heartbeat";
          return false;
        }
        MutexLock lock(state.mu);
        if (hb.shard >= 0 &&
            hb.shard < static_cast<int>(state.shards.size())) {
          Shard& shard = state.shards[static_cast<std::size_t>(hb.shard)];
          if (shard.state == Shard::State::Remote && shard.owner == conn.id) {
            if (hb.trialsDone > shard.lastProgress)
              shard.lastProgress = hb.trialsDone;
            // Any live heartbeat from the owner refreshes the stall clock,
            // even at zero trials finished: one trial may legitimately run
            // longer than the stall budget (sanitizer builds, cold caches),
            // and re-dispatching a shard whose owner is demonstrably alive
            // only burns duplicate work. Stall means the owner went QUIET —
            // dead connections re-queue via drop_conn, silent-but-open ones
            // stop heartbeating and trip the watchdog below.
            // DETLINT-ALLOW(DET001): straggler watchdog bookkeeping —
            // scheduling only, never campaign results.
            shard.lastAdvance = Clock::now();
          }
        }
        return true;
      }
      case MsgType::Error: {
        ErrorMsg err;
        why = parse_error(payload, err) ? ("worker error: " + err.message)
                                        : "malformed Error frame";
        return false;
      }
      default:
        why = std::string("unexpected ") + msg_type_name(type) + " frame";
        return false;
    }
  };

  // --- event loop -----------------------------------------------------------
  char buffer[65536];
  for (;;) {
    // Drain / deadline checks first so a signal is honored even when the
    // sockets are silent.
    if (g_serveSignal.load(std::memory_order_relaxed) != 0 &&
        !draining.exchange(true, std::memory_order_relaxed)) {
      log_warn("serve: interrupted — draining local trials, checkpointing");
      localCancel.cancel(CancelToken::Reason::Cancelled);
    }
    // DETLINT-ALLOW(DET001): event-loop tick — drives the deadline and the
    // straggler watchdog; scheduling only, never campaign results.
    const auto now = Clock::now();
    if (haveDeadline && now >= deadline &&
        !deadlineHit.exchange(true, std::memory_order_relaxed)) {
      draining.store(true, std::memory_order_relaxed);
      localCancel.cancel(CancelToken::Reason::Cancelled);
    }

    // Straggler re-dispatch: a remote shard whose owner went quiet (no
    // heartbeat within the stall budget) goes back to the queue. The
    // original owner keeps running — if it delivers after all, the result
    // is byte-identical and merges cleanly.
    if (stallBudget.count() > 0) {
      MutexLock lock(state.mu);
      for (Shard& shard : state.shards) {
        if (shard.state != Shard::State::Remote) continue;
        if (now - shard.lastAdvance < stallBudget) continue;
        log_warn("serve: shard stalled on worker #" +
                 std::to_string(shard.owner) + "; re-dispatching");
        shard.state = Shard::State::Pending;
        shard.owner = -1;
        ++outcome.redispatches;
      }
    }

    bool allDone;
    {
      MutexLock lock(state.mu);
      allDone = state.trialsDone >= trials;
    }
    // On drain the loop exits immediately; the join below waits for local
    // executors (cancelled via the token) so the final checkpoint includes
    // their completed prefix.
    if (allDone || draining.load(std::memory_order_relaxed)) break;

    // Periodic durable commit of merged progress.
    bool commitNow = false;
    {
      MutexLock lock(state.mu);
      commitNow = !ckptPath.empty() && options.checkpointEvery > 0 &&
                  state.dirtyShards >= options.checkpointEvery &&
                  state.trialsDone < trials;
    }
    if (commitNow) {
      try {
        commit_merged();
      } catch (const std::exception& e) {
        // Best-effort mid-flight (same policy as the supervisor): the final
        // commit below is the one that throws.
        log_warn("serve: checkpoint write failed: " + std::string(e.what()));
      }
    }

    // Poll the listener + every connection. `polled` pins the count of
    // connections that own an fds slot: the accept below may push_back a new
    // conn, and the walk must not index fds past what was actually polled.
    const std::size_t polled = conns.size();
    std::vector<pollfd> fds;
    fds.reserve(polled + 1);
    const bool haveListener = listener.valid();
    if (haveListener) fds.push_back({listener.fd(), POLLIN, 0});
    for (const auto& conn : conns) fds.push_back({conn->sock.fd(), POLLIN, 0});
    const int rc =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), /*timeout=*/20);
    if (rc < 0 && errno != EINTR)
      throw std::runtime_error("serve: poll failed");

    // One accept per POLLIN: the listener fd is non-blocking (a connection
    // that vanished between poll and accept yields an invalid socket, not a
    // hang), and poll is level-triggered — further pending connections
    // re-report next tick.
    if (haveListener && rc > 0 && (fds[0].revents & POLLIN) != 0) {
      Socket accepted = listener.accept_pending();
      if (accepted.valid()) {
        if (options.sendBufferBytes > 0)
          accepted.set_send_buffer(options.sendBufferBytes);
        conns.push_back(
            std::make_unique<Conn>(std::move(accepted), nextConnId++));
      } else if (errno == EMFILE || errno == ENFILE) {
        // Fd exhaustion: shed the connection and keep serving. The worker
        // retries on its reconnect budget; if the condition persists the
        // campaign still completes through the --local-threads ladder.
        log_warn("serve: accept failed (" +
                 std::string(errno == EMFILE ? "EMFILE" : "ENFILE") +
                 "); shedding connection, continuing to serve");
      }
    }

    // Walk connections back-to-front so drop_conn's erase cannot skip one.
    // Only the `polled` prefix has revents; a conn accepted this tick waits
    // until the next poll round.
    const std::size_t base = haveListener ? 1 : 0;
    for (std::size_t i = polled; i-- > 0;) {
      if (rc <= 0 || (fds[base + i].revents & (POLLIN | POLLHUP | POLLERR)) == 0)
        continue;
      Conn& conn = *conns[i];
      const long got =
          conn.sock.recv_some(buffer, sizeof(buffer), /*timeoutMs=*/0);
      if (got < 0) {
        drop_conn(i, DropCause::Eof,
                  conn.decoder.truncated() ? "connection lost mid-frame"
                                           : "connection closed");
        continue;
      }
      if (got == 0) continue;
      conn.decoder.feed(buffer, static_cast<std::size_t>(got));
      bool dropped = false;
      for (;;) {
        FrameDecoder::Result frame = conn.decoder.next();
        if (frame.status == FrameDecoder::Status::NeedMore) break;
        if (frame.status == FrameDecoder::Status::Error) {
          drop_conn(i, DropCause::FrameError,
                    std::string("frame rejected: ") +
                        frame_error_name(frame.error));
          dropped = true;
          break;
        }
        std::string why;
        if (!handle_frame(conn, frame.type, frame.payload, why)) {
          drop_conn(i, DropCause::ProtocolError, why);
          dropped = true;
          break;
        }
      }
      if (dropped) continue;
    }
  }

  // --- shutdown -------------------------------------------------------------
  // Tell every live worker the campaign is over, then linger briefly
  // answering any in-flight frame (a Ready racing the campaign's last merge,
  // a heartbeat from a stale duplicate shard) with Shutdown, so workers exit
  // 0 instead of discovering a dead socket. Best effort — a worker that
  // still misses it retires via its reconnect budget.
  // Shutdown sends use a short deadline: a quarantined-but-undropped peer
  // must not cost the teardown N x the full send timeout.
  const int shutdownSendMs = sendTimeoutMs < 250 ? sendTimeoutMs : 250;
  const std::string shutdownFrame = encode_frame(MsgType::Shutdown, "");
  for (auto& conn : conns)
    if (conn->ready) conn->sock.send_all(shutdownFrame, shutdownSendMs);
  {
    // DETLINT-ALLOW(DET001): shutdown linger window — connection teardown
    // scheduling only, never campaign results.
    const auto lingerUntil = Clock::now() + std::chrono::milliseconds(500);
    // DETLINT-ALLOW(DET001): same linger window as above.
    while (!conns.empty() && Clock::now() < lingerUntil) {
      std::vector<pollfd> fds;
      fds.reserve(conns.size());
      for (const auto& conn : conns)
        fds.push_back({conn->sock.fd(), POLLIN, 0});
      const int rc =
          ::poll(fds.data(), static_cast<nfds_t>(fds.size()), /*timeout=*/20);
      if (rc < 0 && errno != EINTR) break;
      for (std::size_t i = conns.size(); i-- > 0;) {
        if (rc <= 0 ||
            (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0)
          continue;
        Conn& conn = *conns[i];
        const long got =
            conn.sock.recv_some(buffer, sizeof(buffer), /*timeoutMs=*/0);
        if (got < 0) {
          conns.erase(conns.begin() + static_cast<long>(i));
          continue;
        }
        if (got == 0) continue;
        conn.decoder.feed(buffer, static_cast<std::size_t>(got));
        for (;;) {
          FrameDecoder::Result frame = conn.decoder.next();
          if (frame.status != FrameDecoder::Status::Frame) break;
          conn.sock.send_all(shutdownFrame, shutdownSendMs);
        }
      }
    }
  }
  conns.clear();

  localCancel.cancel(CancelToken::Reason::Cancelled);
  for (std::thread& t : localRunners) t.join();

  {
    MutexLock lock(state.mu);
    outcome.trialsDone = state.trialsDone;
    outcome.shardsMerged = state.shardsMerged;
    outcome.timeouts = state.timeouts;
  }
  if (deadlineHit.load(std::memory_order_relaxed))
    outcome.cause = runtime::StopCause::DeadlineExceeded;
  else if (draining.load(std::memory_order_relaxed) ||
           outcome.trialsDone < trials)
    outcome.cause = runtime::StopCause::Interrupted;
  else
    outcome.cause = runtime::StopCause::Completed;

  if (!ckptPath.empty()) {
    try {
      commit_merged();
      outcome.checkpointWritten = true;
    } catch (const runtime::DurableError& e) {
      // Environmental commit failure with the previous generation intact:
      // resumable (exit 75), same policy as the supervisor's final commit.
      outcome.commitError = e.what();
      log_warn("serve: final checkpoint commit failed: " +
               std::string(e.what()));
    }
  }
  if (outcome.completed() && outcome.commitError.empty())
    outcome.report = engine.report();
  return outcome;
}

} // namespace nvff::dist
