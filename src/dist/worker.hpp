// Worker of the distributed campaign service (`nvfftool worker`).
//
// A worker is deliberately stateless between shards: it dials the
// coordinator, handshakes (protocol version, then config fingerprint — the
// worker rebuilds the engine from the coordinator's config blob,
// re-serializes it, and the CRCs must agree before a single trial runs),
// then loops Ready -> ShardAssign -> ShardResult. Everything it knows is
// reconstructible, which is why the chaos drill may kill -9 a worker at any
// instant and lose nothing but time.
//
// Failure semantics:
//
//   coordinator unreachable / killed -> capped exponential-backoff
//                                       reconnect; a running shard is
//                                       abandoned (cancel token) the moment
//                                       a heartbeat send fails. If the
//                                       coordinator stays gone past
//                                       --reconnect-budget-s the worker
//                                       exits 1.
//   corrupt / truncated / skewed frame -> classified, connection dropped,
//                                        reconnect. Never a crash.
//   Shutdown frame                   -> the campaign is complete (or
//                                       draining); exit 0.
//
// While a shard computes, a heartbeat thread reports monotonic progress so
// the coordinator can tell a slow shard from a dead one.
#pragma once

#include <string>

namespace nvff::dist {

struct WorkerOptions {
  /// Coordinator endpoint: `unix:PATH` or `tcp:HOST:PORT`.
  std::string endpoint;
  int threads = 1;        ///< pool width for trials within a shard
  /// Per-attempt TCP connect deadline (an unreachable host must cost one
  /// deadline, not a kernel SYN-retry eternity). Unix connects ignore it.
  int connectTimeoutMs = 2000;
  /// Per-message send deadline toward the coordinator; on expiry the
  /// connection is dropped (partial frame poisons the stream) and the
  /// reconnect loop takes over. <= 0 falls back to kDefaultSendTimeoutMs.
  int sendTimeoutMs = 0;
  double heartbeatIntervalSeconds = 0.25;
  int reconnectInitialMs = 50; ///< backoff: first retry delay ...
  int reconnectCapMs = 2000;   ///< ... doubling up to this cap
  /// Give up (exit 1) when no coordinator has been reachable for this long.
  double reconnectBudgetSeconds = 30.0;
  /// Chaos hook: corrupt one byte of every Nth outgoing frame (0 = off).
  /// The coordinator's CRC check drops the connection; the drill asserts
  /// the campaign still converges bit-identically.
  int chaosCorruptEvery = 0;
};

struct WorkerOutcome {
  bool shutdownReceived = false; ///< coordinator retired us cleanly
  int shardsCompleted = 0;       ///< ShardResults successfully sent
  long reconnects = 0;           ///< connection (re)establishments after the first
  std::string error;             ///< set when exiting unsuccessfully

  int exit_code() const { return shutdownReceived ? 0 : 1; }
};

/// Runs the worker loop until the coordinator says Shutdown or the
/// reconnect budget is exhausted. Never throws for peer-induced failures;
/// throws std::runtime_error only for unusable options.
WorkerOutcome run_worker(const WorkerOptions& options);

} // namespace nvff::dist
