// Deterministic in-process network-chaos proxy (`nvfftool netchaos`).
//
// Sits between workers and the coordinator as a plain TCP/unix relay and
// injects the network's greatest hits: added latency, throughput throttling,
// 1-byte dribble delivery, mid-frame connection resets, black holes (accept
// and then never forward a byte), and bit corruption. Which fault a
// connection suffers — and every fault parameter — derives from
// Rng::stream(seed, connectionOrdinal), so a chaos run is REPLAYABLE: the
// same seed yields the same fault schedule, and a failing drill can be
// re-run under a debugger with identical network weather.
//
// The proxy is the adversary the transport layer is specified against. The
// campaign's merged report must come out byte-identical to a single-process
// run under ANY seed, because every injected fault lands in territory the
// protocol already owns: CRC framing rejects corruption, truncated frames
// drop the connection, reconnect + shard re-dispatch recover delivery, and
// counter-based trial RNG makes re-execution bit-identical.
//
// Single-threaded poll loop; no fault ever blocks the relay of another
// connection (the proxy must not itself become the stall it simulates).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "dist/endpoint.hpp"

namespace nvff::dist {

/// Fault classes a connection can be assigned. Exactly one per connection
/// (plus Clean), chosen deterministically from the seed.
enum class ChaosClass {
  Clean,     ///< relay faithfully (the control group)
  Latency,   ///< delay each forwarded chunk by a seed-derived amount
  Throttle,  ///< cap forwarded bytes per scheduler tick
  Dribble,   ///< deliver one byte per write (worst-case fragmentation)
  Reset,     ///< close both sides abruptly after a seed-derived byte count
  Blackhole, ///< accept, then never forward (and never drain) anything
  Corrupt,   ///< flip one bit roughly every kCorrupt* forwarded bytes
};
const char* chaos_class_name(ChaosClass c);

struct NetChaosOptions {
  std::string listenEndpoint;   ///< where workers dial (`unix:`/`tcp:`)
  std::string upstreamEndpoint; ///< the real coordinator
  std::uint64_t seed = 1;       ///< fault-schedule key (replayable)
  /// Enabled fault classes; a connection draws uniformly among the enabled
  /// ones after the clean-share lottery. All on by default.
  bool enableLatency = true;
  bool enableThrottle = true;
  bool enableDribble = true;
  bool enableReset = true;
  bool enableBlackhole = true;
  bool enableCorrupt = true;
  double cleanShare = 0.25;   ///< fraction of connections left unharmed
  int connectTimeoutMs = 2000;///< upstream dial deadline per connection
  double runSeconds = 0.0;    ///< wall budget; 0 = run until `stop`
  /// Cooperative stop flag (CLI wires SIGINT/SIGTERM to it); may be null.
  const std::atomic<bool>* stop = nullptr;
  /// Invoked once the listener is up with the concrete bound endpoint.
  std::function<void(const Endpoint&)> onListening;
};

struct NetChaosOutcome {
  std::string boundEndpoint;
  long connections = 0;   ///< accepted client connections
  long bytesForwarded = 0;///< total relayed bytes, both directions
  long corruptions = 0;   ///< bits flipped
  long resets = 0;        ///< connections reset mid-stream
  long blackholes = 0;    ///< connections black-holed
};

/// Runs the proxy until `runSeconds` elapses or `stop` is raised. Throws
/// std::runtime_error on setup errors (bad endpoints, bind failure); peer
/// failures never throw.
NetChaosOutcome run_netchaos(const NetChaosOptions& options);

} // namespace nvff::dist
