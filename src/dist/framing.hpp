// Wire framing for the distributed campaign service.
//
// Every message between `nvfftool serve` (coordinator) and `nvfftool worker`
// travels in one length-prefixed, CRC-guarded frame:
//
//   offset  size  field
//   0       4     magic "NVFD"
//   4       1     protocol version (kProtocolVersion)
//   5       1     message type (MsgType)
//   6       2     reserved, must be zero
//   8       4     payload length, little-endian
//   12      4     CRC-32 of the payload, little-endian
//   16      n     payload
//
// Robustness is the design center, in the same spirit as the checkpoint
// envelope (runtime/durable_file): a truncated, oversized, corrupted or
// version-skewed frame is *classified* by the decoder — never parsed into a
// wrong message, never an exception, never a crash. The coordinator and the
// worker both respond to any FrameError by dropping the connection; the
// shard in flight is re-dispatched (coordinator side) or re-requested after
// a reconnect (worker side), so a single flipped bit on the wire costs one
// round-trip and zero correctness.
//
// The decoder is incremental: feed() it whatever recv() returned and poll
// next(); partial frames simply wait for more bytes. A connection that
// closes mid-frame is reported by truncated().
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace nvff::dist {

constexpr std::uint8_t kProtocolVersion = 1;

/// Frames larger than this are rejected as Oversized before any allocation
/// happens — a corrupt length field must not become a 4 GiB allocation.
constexpr std::uint32_t kMaxFramePayload = 64u * 1024u * 1024u;

/// Message vocabulary of the coordinator/worker protocol. Values are wire
/// format — append only, never renumber.
enum class MsgType : std::uint8_t {
  Hello = 1,       ///< worker -> coordinator: protocol + engine handshake
  Welcome = 2,     ///< coordinator -> worker: engine name + config blob
  Ready = 3,       ///< worker -> coordinator: fingerprint ack + work request
  ShardAssign = 4, ///< coordinator -> worker: run trials [begin, end)
  ShardResult = 5, ///< worker -> coordinator: serialized finished trials
  Heartbeat = 6,   ///< worker -> coordinator: still computing this shard
  Idle = 7,        ///< coordinator -> worker: no work now, ask again
  Shutdown = 8,    ///< coordinator -> worker: campaign done, exit 0
  Error = 9,       ///< either side: fatal diagnostic before closing
};
const char* msg_type_name(MsgType type);

/// Why a frame was rejected. Classified, not thrown: wire corruption is an
/// expected fault, not an exceptional one.
enum class FrameError {
  None,
  BadMagic,   ///< stream desynchronized or not speaking this protocol
  BadVersion, ///< protocol version skew between coordinator and worker
  BadReserved,///< reserved header bytes nonzero (header corruption)
  BadType,    ///< message type outside the vocabulary
  Oversized,  ///< declared payload length exceeds kMaxFramePayload
  BadCrc,     ///< payload failed its CRC-32 (corruption in transit)
};
const char* frame_error_name(FrameError error);

/// Encodes one frame. The only way bytes enter the wire.
std::string encode_frame(MsgType type, std::string_view payload);

/// Incremental frame decoder. feed() bytes as they arrive, then call next()
/// until it returns NeedMore. After any Error result the stream is
/// poisoned — the caller must drop the connection (resynchronizing inside a
/// corrupted byte stream is guesswork, and reconnecting is cheap).
class FrameDecoder {
public:
  enum class Status { NeedMore, Frame, Error };

  struct Result {
    Status status = Status::NeedMore;
    MsgType type = MsgType::Error;
    std::string payload;             ///< valid when status == Frame
    FrameError error = FrameError::None; ///< set when status == Error
  };

  /// Appends received bytes to the internal buffer. Cheap; no parsing.
  void feed(const char* data, std::size_t size);

  /// Extracts the next complete frame, if any.
  Result next();

  /// True when a poisoned stream or a mid-frame EOF left unconsumed bytes:
  /// the peer closed (or corrupted) the connection part-way into a frame.
  bool truncated() const { return poisoned_ || !buffer_.empty(); }

  /// Bytes currently buffered (tests; also a cheap backpressure signal).
  std::size_t buffered() const { return buffer_.size(); }

private:
  std::string buffer_;
  bool poisoned_ = false;
};

} // namespace nvff::dist
