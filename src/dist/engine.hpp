// Engine adapters: how the existing campaign engines plug into the
// distributed coordinator/worker service WITHOUT modification.
//
// A CampaignEngine owns the full result vector (slot t = trial t) and wraps
// exactly the three operations the service needs, all of which the engines
// already expose for the runtime supervisor:
//
//   run_trial(t)  — computes slot t from (config, t) alone. Counter-based
//                   RNG streams make trials location-independent: a trial
//                   computes the same bytes on any worker, any host, any
//                   thread — which is what makes straggler re-dispatch and
//                   duplicate shard completions trivially safe to merge.
//   serialize(ids)— renders the named slots as the engine's own durable
//                   checkpoint document. The coordinator's merged campaign
//                   state IS a normal checkpoint: a distributed run can be
//                   resumed by a single-process `nvfftool mc --checkpoint`,
//                   and vice versa.
//   merge(doc)    — parses a checkpoint document, validates its config
//                   fingerprint against this engine's, fills the slots it
//                   names and returns their ids. Used for both shard
//                   results arriving over the wire and on-disk resume.
//
// The config blob shipped in the Welcome handshake is the engine's own
// empty-trials checkpoint document. It doubles as the config fingerprint:
// the worker reconstructs the config from it, re-serializes, and the two
// strings must match byte for byte (%.17g round-trips doubles exactly), so
// any skew — different build, different defaults, different parse — is
// caught before a single trial runs.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runtime/supervisor.hpp"
#include "util/cancellation.hpp"

namespace nvff::reliability {
struct CampaignConfig;
}
namespace nvff::faults {
struct CampaignConfig;
}

namespace nvff::dist {

class CampaignEngine {
public:
  virtual ~CampaignEngine() = default;

  virtual const char* name() const = 0;
  virtual int trials() const = 0;

  /// Canonical config document (an empty-trials checkpoint). Also the
  /// fingerprint both handshake sides compare.
  virtual std::string config_blob() const = 0;

  /// Runs trial `id` into slot `id`. Never throws; classifies instead
  /// (same contract as runtime::CampaignHooks::runTrial). Thread-safe for
  /// distinct ids — slots never alias.
  virtual runtime::TrialStatus run_trial(int id, const CancelToken& cancel) = 0;

  /// Serializes the slots named by `ids` (ascending) as a checkpoint doc.
  virtual std::string serialize(const std::vector<int>& ids) const = 0;

  /// Parses a checkpoint doc, validates its fingerprint (throws
  /// runtime::ConfigMismatch), fills the named slots and returns their ids
  /// (ids outside [0, trials) are dropped). Throws std::runtime_error on a
  /// malformed document.
  virtual std::vector<int> merge(const std::string& payload) = 0;

  /// Deterministic full-campaign report — byte-identical to the one the
  /// single-process CLI prints for the same config.
  virtual std::string report() const = 0;
};

std::unique_ptr<CampaignEngine> make_mc_engine(
    const reliability::CampaignConfig& config);
std::unique_ptr<CampaignEngine> make_powerfail_engine(
    const faults::CampaignConfig& config);

using EngineFactory =
    std::function<std::unique_ptr<CampaignEngine>(const std::string& blob)>;

/// Registers a factory under `name` (tests plug cheap engines in here;
/// "mc" and "powerfail" are built in). Replaces any previous registration.
void register_engine_factory(const std::string& name, EngineFactory factory);

/// Builds an engine from a Welcome handshake: `name` selects the factory,
/// `blob` is the coordinator's config document. Throws std::runtime_error
/// on an unknown engine name or an unparseable blob.
std::unique_ptr<CampaignEngine> make_engine(const std::string& name,
                                            const std::string& blob);

} // namespace nvff::dist
