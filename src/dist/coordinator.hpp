// Coordinator of the distributed campaign service (`nvfftool serve`).
//
// One coordinator process owns the campaign: it shards the trial range,
// hands shards to however many `nvfftool worker` processes connect, merges
// their checkpoint documents into the campaign state, and commits that
// state durably through the same two-generation machinery single-process
// runs use. The merged checkpoint IS a normal engine checkpoint — a killed
// distributed run can be resumed by `nvfftool serve` OR by a plain
// single-process `--checkpoint --resume` run, and vice versa.
//
// Failure semantics (the design center — every peer is killable):
//
//   worker dies / connection drops    -> its in-flight shards return to the
//                                        pending queue; campaign continues
//                                        with the survivors.
//   worker stalls (heartbeat progress -> shard is re-dispatched to the next
//   frozen past --stall-timeout)         requester; if the straggler later
//                                        delivers anyway, the duplicate is
//                                        byte-identical (counter-based RNG)
//                                        and merging it is a no-op.
//   worker stops draining its socket  -> the per-message send deadline
//   (black hole, frozen peer, dead       fires instead of wedging the event
//   network path)                        loop; the connection is quarantined
//                                        (dropped, counted, shards
//                                        re-dispatched). With every worker
//                                        gone the --local-threads executors
//                                        carry the campaign — the last rung
//                                        of the degradation ladder.
//   frame corrupt / truncated / skewed-> classified by the framing layer;
//                                        the connection is dropped and the
//                                        shard re-dispatched. Never a crash.
//   no workers at all                 -> --local-threads N runs shards in
//                                        the coordinator itself; the service
//                                        degrades to exactly the
//                                        single-process supervisor.
//   coordinator killed                -> the durable checkpoint holds every
//                                        merged shard; rerunning serve
//                                        resumes from it (merge-exact:
//                                        final report bit-identical to an
//                                        uninterrupted run).
//   SIGINT/SIGTERM                    -> stop assigning, drain local
//                                        trials, commit a final checkpoint,
//                                        exit 75 (EX_TEMPFAIL) like every
//                                        other campaign CLI.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "dist/channel.hpp"
#include "dist/endpoint.hpp"
#include "dist/engine.hpp"
#include "runtime/supervisor.hpp"

namespace nvff::dist {

struct ServeOptions {
  /// Endpoint the workers dial: `unix:PATH` or `tcp:HOST:PORT` (port 0 =
  /// ephemeral; the bound endpoint is reported via onListening and
  /// ServeOutcome::boundEndpoint). Empty = no listener (local-only run).
  std::string endpoint;
  int shardSize = 8;         ///< trials per shard (>= 1)
  int localThreads = 0;      ///< in-process executor threads (0 = none)
  std::string checkpointPath;///< merged durable campaign state; empty = none
  int checkpointEvery = 1;   ///< commit cadence in merged shards
  bool requireResume = false;///< --resume: error out if nothing loadable
  /// A remote shard whose heartbeat progress has not advanced for this long
  /// is re-dispatched (the straggler keeps running; duplicates merge clean).
  double stallTimeoutSeconds = 10.0;
  double deadlineSeconds = 0.0; ///< campaign wall-clock budget; 0 = off
  bool installSignalHandlers = false; ///< SIGINT/SIGTERM drain (CLI only)
  /// Per-message send deadline toward a worker. A connection whose send
  /// times out is quarantined: dropped immediately (the partial frame
  /// poisoned the stream), its shards re-dispatched, the event loop never
  /// blocked. <= 0 falls back to kDefaultSendTimeoutMs.
  int sendTimeoutMs = kDefaultSendTimeoutMs;
  /// Invoked once the listener is up, with the concrete bound endpoint
  /// (ephemeral tcp ports resolved). Tests and scripts use it to learn
  /// where to point workers before the campaign finishes.
  std::function<void(const Endpoint&)> onListening;
  /// Test hook: shrink the kernel send buffer of accepted connections so a
  /// non-draining peer trips the send deadline within a few frames
  /// (0 = kernel default).
  int sendBufferBytes = 0;
};

struct ServeOutcome {
  runtime::StopCause cause = runtime::StopCause::Completed;
  int trialsTotal = 0;
  int trialsDone = 0;
  int trialsResumed = 0;   ///< merged from the on-disk checkpoint at start
  int shardsTotal = 0;
  int shardsMerged = 0;    ///< includes locally executed shards
  long redispatches = 0;   ///< shards returned to pending (drop or stall)
  long framesRejected = 0; ///< classified frame errors that dropped a conn
  int workersSeen = 0;     ///< connections that completed the handshake
  int workersDropped = 0;  ///< connections lost after the handshake
  long sendTimeouts = 0;   ///< per-message send deadlines that fired
  int workersQuarantined = 0; ///< connections dropped for send timeouts
  long timeouts = 0;       ///< trials recorded as watchdog/engine timeouts
  std::string boundEndpoint; ///< concrete listener endpoint (empty = none)
  bool checkpointWritten = false;
  /// Non-empty when the final merged commit failed with a classified
  /// DurableError: the previous generation is intact, the run resumable
  /// (same contract as SupervisorOutcome::commitError).
  std::string commitError;
  std::vector<std::string> quarantined;
  std::string report; ///< engine report; only set when the campaign completed

  bool completed() const { return trialsDone == trialsTotal; }
  /// Same contract as the supervisor: 0 complete, 75 interrupted (or final
  /// commit failed) with a resumable checkpoint on disk, 1 otherwise.
  int exit_code() const {
    if (!commitError.empty()) return runtime::kExitInterrupted;
    if (completed()) return runtime::kExitOk;
    return checkpointWritten ? runtime::kExitInterrupted
                             : runtime::kExitFatal;
  }
};

/// Runs the coordinator until the campaign completes, the deadline expires,
/// or a drain signal arrives. Throws std::runtime_error on fatal setup
/// errors (bad options, socket bind failure, resume fingerprint mismatch —
/// the latter as runtime::ConfigMismatch). Worker failures never throw.
ServeOutcome serve_campaign(CampaignEngine& engine, const ServeOptions& options);

} // namespace nvff::dist
