#include "dist/messages.hpp"

#include <exception>

#include "util/json.hpp"

namespace nvff::dist {

namespace {

using json::append_escaped;
using json::num;
using Json = json::Value;

/// Splits "<json-header>\n<raw blob>" payloads. Returns false when the
/// newline is missing (truncation above the frame layer).
bool split_header(const std::string& payload, std::string& header,
                  std::string& blob) {
  const std::size_t eol = payload.find('\n');
  if (eol == std::string::npos) return false;
  header = payload.substr(0, eol);
  blob = payload.substr(eol + 1);
  return true;
}

} // namespace

std::string encode_hello(const HelloMsg& msg) {
  return "{\"version\":" + num(msg.protocolVersion) + "}";
}

bool parse_hello(const std::string& payload, HelloMsg& out) {
  try {
    const Json j = json::parse(payload, "hello");
    out.protocolVersion = static_cast<int>(j.at("version").as_num());
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

std::string encode_welcome(const WelcomeMsg& msg) {
  std::string header = "{\"engine\":";
  append_escaped(header, msg.engine);
  header += "}";
  return header + "\n" + msg.blob;
}

bool parse_welcome(const std::string& payload, WelcomeMsg& out) {
  std::string header;
  if (!split_header(payload, header, out.blob)) return false;
  try {
    const Json j = json::parse(header, "welcome");
    out.engine = j.at("engine").as_str();
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

std::string encode_ready(const ReadyMsg& msg) {
  return "{\"crc\":" + num(static_cast<double>(msg.fingerprintCrc)) +
         ",\"trials\":" + num(msg.trials) + "}";
}

bool parse_ready(const std::string& payload, ReadyMsg& out) {
  try {
    const Json j = json::parse(payload, "ready");
    const double crc = j.at("crc").as_num();
    if (crc < 0 || crc > 4294967295.0) return false;
    out.fingerprintCrc = static_cast<std::uint32_t>(crc);
    out.trials = static_cast<int>(j.at("trials").as_num());
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

std::string encode_shard_assign(const ShardAssignMsg& msg) {
  std::string out = "{\"shard\":" + num(msg.shard) + ",\"ids\":[";
  for (std::size_t i = 0; i < msg.ids.size(); ++i) {
    if (i) out += ',';
    out += num(msg.ids[i]);
  }
  out += "]}";
  return out;
}

bool parse_shard_assign(const std::string& payload, ShardAssignMsg& out) {
  try {
    const Json j = json::parse(payload, "shard-assign");
    out.shard = static_cast<int>(j.at("shard").as_num());
    out.ids.clear();
    const Json& ids = j.at("ids");
    if (ids.kind != Json::Kind::Arr) return false;
    out.ids.reserve(ids.items.size());
    for (const Json& id : ids.items)
      out.ids.push_back(static_cast<int>(id.as_num()));
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

std::string encode_shard_result(const ShardResultMsg& msg) {
  return "{\"shard\":" + num(msg.shard) + "}\n" + msg.blob;
}

bool parse_shard_result(const std::string& payload, ShardResultMsg& out) {
  std::string header;
  if (!split_header(payload, header, out.blob)) return false;
  try {
    const Json j = json::parse(header, "shard-result");
    out.shard = static_cast<int>(j.at("shard").as_num());
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

std::string encode_heartbeat(const HeartbeatMsg& msg) {
  return "{\"shard\":" + num(msg.shard) + ",\"done\":" + num(msg.trialsDone) +
         "}";
}

bool parse_heartbeat(const std::string& payload, HeartbeatMsg& out) {
  try {
    const Json j = json::parse(payload, "heartbeat");
    out.shard = static_cast<int>(j.at("shard").as_num());
    out.trialsDone = static_cast<int>(j.at("done").as_num());
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

std::string encode_error(const ErrorMsg& msg) {
  std::string out = "{\"message\":";
  append_escaped(out, msg.message);
  out += "}";
  return out;
}

bool parse_error(const std::string& payload, ErrorMsg& out) {
  try {
    const Json j = json::parse(payload, "error");
    out.message = j.at("message").as_str();
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

} // namespace nvff::dist
