#include "dist/engine.hpp"

#include <map>
#include <stdexcept>
#include <utility>

#include "faults/powerfail.hpp"
#include "reliability/checkpoint.hpp"
#include "reliability/montecarlo.hpp"

namespace nvff::dist {

namespace {

// --- Monte-Carlo reliability ------------------------------------------------

class McEngine final : public CampaignEngine {
public:
  explicit McEngine(const reliability::CampaignConfig& config) {
    result_.config = config;
    result_.trials.resize(static_cast<std::size_t>(config.trials));
  }

  const char* name() const override { return "mc"; }
  int trials() const override { return result_.config.trials; }

  std::string config_blob() const override {
    return reliability::serialize_checkpoint(result_.config, {});
  }

  runtime::TrialStatus run_trial(int id, const CancelToken& cancel) override {
    reliability::TrialResult r =
        reliability::run_trial(result_.config, id, &cancel);
    const bool cancelledSeen =
        r.standard.solveStatus == spice::SolveStatus::Cancelled ||
        r.proposed.solveStatus == spice::SolveStatus::Cancelled;
    auto& slot = result_.trials[static_cast<std::size_t>(id)];
    slot = std::move(r);
    if (cancelledSeen) {
      return cancel.reason() == CancelToken::Reason::Timeout
                 ? runtime::TrialStatus::Timeout
                 : runtime::TrialStatus::Cancelled;
    }
    if (slot.standard.outcome == reliability::TrialOutcome::Unclassified ||
        slot.proposed.outcome == reliability::TrialOutcome::Unclassified)
      return runtime::TrialStatus::Transient;
    return runtime::TrialStatus::Ok;
  }

  std::string serialize(const std::vector<int>& ids) const override {
    std::vector<reliability::TrialResult> finished;
    finished.reserve(ids.size());
    for (const int id : ids)
      finished.push_back(result_.trials[static_cast<std::size_t>(id)]);
    return reliability::serialize_checkpoint(result_.config, finished);
  }

  std::vector<int> merge(const std::string& payload) override {
    reliability::CheckpointData loaded = reliability::parse_checkpoint(payload);
    reliability::validate_checkpoint(result_.config, loaded.config);
    std::vector<int> ids;
    for (reliability::TrialResult& t : loaded.trials) {
      if (t.trialId < 0 || t.trialId >= result_.config.trials) continue;
      ids.push_back(t.trialId);
      result_.trials[static_cast<std::size_t>(t.trialId)] = std::move(t);
    }
    return ids;
  }

  std::string report() const override {
    return reliability::render_report(result_);
  }

private:
  reliability::CampaignResult result_;
};

// --- power-interruption fault injection -------------------------------------

class PowerfailEngine final : public CampaignEngine {
public:
  explicit PowerfailEngine(const faults::CampaignConfig& config)
      // The shared context (placed benchmark, schedules, golden run) is
      // built once per process; building it is deterministic, so every
      // worker and the coordinator hold identical copies.
      : context_(faults::build_context(config)) {
    result_.config = config;
    result_.trials.resize(static_cast<std::size_t>(config.trials));
  }

  const char* name() const override { return "powerfail"; }
  int trials() const override { return result_.config.trials; }

  std::string config_blob() const override {
    return faults::serialize_powerfail_checkpoint(result_.config, {});
  }

  runtime::TrialStatus run_trial(int id, const CancelToken& cancel) override {
    faults::TrialResult r = faults::run_trial(context_, id, &cancel);
    if (!r.timedOut && cancel.cancelled() &&
        cancel.reason() == CancelToken::Reason::Cancelled)
      return runtime::TrialStatus::Cancelled; // partial; re-run elsewhere
    const bool timedOut = r.timedOut;
    result_.trials[static_cast<std::size_t>(id)] = std::move(r);
    return timedOut ? runtime::TrialStatus::Timeout : runtime::TrialStatus::Ok;
  }

  std::string serialize(const std::vector<int>& ids) const override {
    std::vector<faults::TrialResult> finished;
    finished.reserve(ids.size());
    for (const int id : ids)
      finished.push_back(result_.trials[static_cast<std::size_t>(id)]);
    return faults::serialize_powerfail_checkpoint(result_.config, finished);
  }

  std::vector<int> merge(const std::string& payload) override {
    faults::PowerfailCheckpoint loaded =
        faults::parse_powerfail_checkpoint(payload);
    faults::validate_powerfail_checkpoint(result_.config, loaded.config);
    std::vector<int> ids;
    for (faults::TrialResult& t : loaded.trials) {
      if (t.trialId < 0 || t.trialId >= result_.config.trials) continue;
      ids.push_back(t.trialId);
      result_.trials[static_cast<std::size_t>(t.trialId)] = std::move(t);
    }
    return ids;
  }

  std::string report() const override { return faults::render_report(result_); }

private:
  faults::CampaignContext context_;
  faults::CampaignResult result_;
};

// --- registry ---------------------------------------------------------------

std::map<std::string, EngineFactory>& registry() {
  static std::map<std::string, EngineFactory> factories = {
      {"mc",
       [](const std::string& blob) -> std::unique_ptr<CampaignEngine> {
         // The blob is the engine's own empty-trials checkpoint: parse it
         // with the engine's own parser and adopt the embedded config.
         return std::make_unique<McEngine>(
             reliability::parse_checkpoint(blob).config);
       }},
      {"powerfail",
       [](const std::string& blob) -> std::unique_ptr<CampaignEngine> {
         return std::make_unique<PowerfailEngine>(
             faults::parse_powerfail_checkpoint(blob).config);
       }},
  };
  return factories;
}

} // namespace

std::unique_ptr<CampaignEngine> make_mc_engine(
    const reliability::CampaignConfig& config) {
  return std::make_unique<McEngine>(config);
}

std::unique_ptr<CampaignEngine> make_powerfail_engine(
    const faults::CampaignConfig& config) {
  return std::make_unique<PowerfailEngine>(config);
}

void register_engine_factory(const std::string& name, EngineFactory factory) {
  registry()[name] = std::move(factory);
}

std::unique_ptr<CampaignEngine> make_engine(const std::string& name,
                                            const std::string& blob) {
  const auto it = registry().find(name);
  if (it == registry().end())
    throw std::runtime_error("dist: unknown engine '" + name + "'");
  return it->second(blob);
}

} // namespace nvff::dist
