#include "dist/framing.hpp"

#include <cstring>

#include "runtime/crc32.hpp"

namespace nvff::dist {

namespace {

constexpr char kMagic[4] = {'N', 'V', 'F', 'D'};
constexpr std::size_t kHeaderSize = 16;

void put_u32le(char* out, std::uint32_t v) {
  out[0] = static_cast<char>(v & 0xff);
  out[1] = static_cast<char>((v >> 8) & 0xff);
  out[2] = static_cast<char>((v >> 16) & 0xff);
  out[3] = static_cast<char>((v >> 24) & 0xff);
}

std::uint32_t get_u32le(const char* in) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(in[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[3])) << 24);
}

bool known_type(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(MsgType::Hello) &&
         raw <= static_cast<std::uint8_t>(MsgType::Error);
}

} // namespace

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::Hello: return "hello";
    case MsgType::Welcome: return "welcome";
    case MsgType::Ready: return "ready";
    case MsgType::ShardAssign: return "shard-assign";
    case MsgType::ShardResult: return "shard-result";
    case MsgType::Heartbeat: return "heartbeat";
    case MsgType::Idle: return "idle";
    case MsgType::Shutdown: return "shutdown";
    case MsgType::Error: return "error";
  }
  return "?";
}

const char* frame_error_name(FrameError error) {
  switch (error) {
    case FrameError::None: return "none";
    case FrameError::BadMagic: return "bad-magic";
    case FrameError::BadVersion: return "bad-version";
    case FrameError::BadReserved: return "bad-reserved";
    case FrameError::BadType: return "bad-type";
    case FrameError::Oversized: return "oversized";
    case FrameError::BadCrc: return "bad-crc";
  }
  return "?";
}

std::string encode_frame(MsgType type, std::string_view payload) {
  std::string out;
  out.resize(kHeaderSize);
  std::memcpy(&out[0], kMagic, 4);
  out[4] = static_cast<char>(kProtocolVersion);
  out[5] = static_cast<char>(type);
  out[6] = 0;
  out[7] = 0;
  put_u32le(&out[8], static_cast<std::uint32_t>(payload.size()));
  put_u32le(&out[12], runtime::crc32(payload.data(), payload.size()));
  out.append(payload.data(), payload.size());
  return out;
}

void FrameDecoder::feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
}

FrameDecoder::Result FrameDecoder::next() {
  Result r;
  if (poisoned_) {
    // A poisoned stream never yields another frame; report the poison again
    // so a caller that missed the first Error cannot spin forever.
    r.status = Status::Error;
    r.error = FrameError::BadMagic;
    return r;
  }
  if (buffer_.size() < kHeaderSize) return r; // NeedMore

  auto fail = [&](FrameError error) {
    poisoned_ = true;
    r.status = Status::Error;
    r.error = error;
    return r;
  };

  if (std::memcmp(buffer_.data(), kMagic, 4) != 0)
    return fail(FrameError::BadMagic);
  const auto version = static_cast<std::uint8_t>(buffer_[4]);
  if (version != kProtocolVersion) return fail(FrameError::BadVersion);
  if (buffer_[6] != 0 || buffer_[7] != 0) return fail(FrameError::BadReserved);
  const auto rawType = static_cast<std::uint8_t>(buffer_[5]);
  if (!known_type(rawType)) return fail(FrameError::BadType);
  const std::uint32_t length = get_u32le(buffer_.data() + 8);
  if (length > kMaxFramePayload) return fail(FrameError::Oversized);
  if (buffer_.size() < kHeaderSize + length) return r; // NeedMore
  const std::uint32_t claimed = get_u32le(buffer_.data() + 12);
  if (runtime::crc32(buffer_.data() + kHeaderSize, length) != claimed)
    return fail(FrameError::BadCrc);

  r.status = Status::Frame;
  r.type = static_cast<MsgType>(rawType);
  r.payload.assign(buffer_.data() + kHeaderSize, length);
  buffer_.erase(0, kHeaderSize + length);
  return r;
}

} // namespace nvff::dist
