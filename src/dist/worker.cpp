#include "dist/worker.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>

#include "dist/channel.hpp"
#include "dist/engine.hpp"
#include "dist/framing.hpp"
#include "dist/messages.hpp"
#include "runtime/crc32.hpp"
#include "util/cancellation.hpp"
#include "util/log.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace nvff::dist {

namespace {

using Clock = std::chrono::steady_clock;

/// Socket sender shared by the shard runner and its heartbeat thread: one
/// mutex per connection, plus the chaos corruption hook. Corruption flips a
/// byte inside the frame's CRC field, so the damage is always detected at
/// the receiver regardless of payload size — exactly the fault the drill
/// wants to inject.
class FrameSender {
public:
  FrameSender(Socket& sock, int corruptEvery, int sendTimeoutMs)
      : sock_(sock), corruptEvery_(corruptEvery),
        sendTimeoutMs_(sendTimeoutMs > 0 ? sendTimeoutMs
                                         : kDefaultSendTimeoutMs) {}

  bool send(MsgType type, const std::string& payload) {
    std::string frame = encode_frame(type, payload);
    MutexLock lock(mu_);
    ++framesSent_;
    if (corruptEvery_ > 0 && framesSent_ % corruptEvery_ == 0) {
      frame[12] = static_cast<char>(frame[12] ^ 0x5a); // CRC field
      log_warn("worker: chaos hook corrupting outgoing " +
               std::string(msg_type_name(type)) + " frame");
    }
    // Any non-Ok status ends the session: a timed-out send leaves a partial
    // frame on the wire, so the stream is poisoned either way.
    return sock_.send_all(frame, sendTimeoutMs_) == SendStatus::Ok;
  }

private:
  Mutex mu_;
  Socket& sock_ GUARDED_BY(mu_);
  int corruptEvery_;
  int sendTimeoutMs_;
  long framesSent_ GUARDED_BY(mu_) = 0;
};

/// Receives frames until one arrives, the peer dies, or `budgetMs` passes.
/// Returns Frame/Error; NeedMore means the budget expired with the stream
/// still healthy.
FrameDecoder::Result recv_frame(Socket& sock, FrameDecoder& decoder,
                                int budgetMs) {
  FrameDecoder::Result out = decoder.next();
  if (out.status != FrameDecoder::Status::NeedMore) return out;
  // DETLINT-ALLOW(DET001): receive-budget bookkeeping — connection
  // scheduling only, never campaign results.
  const auto deadline = Clock::now() + std::chrono::milliseconds(budgetMs);
  char buffer[65536];
  for (;;) {
    // DETLINT-ALLOW(DET001): same receive budget as above.
    const auto now = Clock::now();
    if (now >= deadline) return out; // NeedMore
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    const long got = sock.recv_some(buffer, sizeof(buffer),
                                    static_cast<int>(left.count()) + 1);
    if (got < 0) {
      out.status = FrameDecoder::Status::Error;
      out.error = FrameError::None; // EOF, not corruption
      return out;
    }
    if (got == 0) continue;
    decoder.feed(buffer, static_cast<std::size_t>(got));
    out = decoder.next();
    if (out.status != FrameDecoder::Status::NeedMore) return out;
  }
}

/// One connected session: handshake, then the Ready/ShardAssign loop.
/// Returns true only for a clean Shutdown; false means reconnect.
/// `heardCoordinator` flips true once a well-formed Welcome arrives — the
/// signal the reconnect budget refreshes on. A bare TCP accept must NOT
/// count as contact: a proxy or middlebox that accepts the dial and then
/// drops (or black-holes) the stream would otherwise refresh the budget on
/// every retry and keep a worker spinning forever against a coordinator
/// that is long gone.
bool run_session(Socket& sock, const WorkerOptions& options,
                 std::unique_ptr<CampaignEngine>& engine,
                 std::string& cachedBlob, ThreadPool& pool,
                 WorkerOutcome& outcome, bool& heardCoordinator) {
  FrameDecoder decoder;
  FrameSender sender(sock, options.chaosCorruptEvery, options.sendTimeoutMs);

  if (!sender.send(MsgType::Hello, encode_hello({kProtocolVersion})))
    return false;
  FrameDecoder::Result frame = recv_frame(sock, decoder, /*budgetMs=*/5000);
  if (frame.status != FrameDecoder::Status::Frame ||
      frame.type != MsgType::Welcome) {
    if (frame.status == FrameDecoder::Status::Error &&
        frame.error != FrameError::None)
      log_warn(std::string("worker: handshake frame rejected: ") +
               frame_error_name(frame.error));
    return false;
  }
  WelcomeMsg welcome;
  if (!parse_welcome(frame.payload, welcome)) {
    log_warn("worker: malformed Welcome; dropping connection");
    return false;
  }
  heardCoordinator = true;

  // Rebuild the engine from the coordinator's config blob. Rebuilding is
  // skipped when the blob is unchanged across reconnects (the powerfail
  // context is expensive to place and schedule).
  if (!engine || welcome.blob != cachedBlob) {
    try {
      engine = make_engine(welcome.engine, welcome.blob);
      cachedBlob = welcome.blob;
    } catch (const std::exception& e) {
      log_warn("worker: cannot build engine '" + welcome.engine +
               "': " + std::string(e.what()));
      sender.send(MsgType::Error, encode_error({e.what()}));
      return false;
    }
  }
  // The fingerprint ack: re-serialize OUR reconstruction of the config and
  // CRC it. Any skew — build, defaults, parser — yields a different
  // canonical rendering, and the coordinator refuses before trials run.
  ReadyMsg ready;
  ready.fingerprintCrc = runtime::crc32(engine->config_blob());
  ready.trials = engine->trials();
  if (!sender.send(MsgType::Ready, encode_ready(ready))) return false;

  for (;;) {
    frame = recv_frame(sock, decoder, /*budgetMs=*/1000);
    if (frame.status == FrameDecoder::Status::Error) {
      if (frame.error != FrameError::None)
        log_warn(std::string("worker: frame rejected: ") +
                 frame_error_name(frame.error));
      return false;
    }
    if (frame.status == FrameDecoder::Status::NeedMore) continue;

    switch (frame.type) {
      case MsgType::ShardAssign: {
        ShardAssignMsg assign;
        if (!parse_shard_assign(frame.payload, assign)) {
          log_warn("worker: malformed ShardAssign; dropping connection");
          return false;
        }
        // Run the shard. No transient-retry loop here: trials derive all
        // randomness from counter-based streams, so a retry recomputes the
        // same bytes — recording immediately is bit-identical to the
        // supervisor's retry-then-record path.
        CancelToken abandon; // raised when the coordinator stops answering
        std::atomic<int> trialsDone{0};
        std::atomic<bool> shardOver{false};
        std::thread heartbeat([&] {
          const auto interval = std::chrono::duration<double>(
              options.heartbeatIntervalSeconds > 0.0
                  ? options.heartbeatIntervalSeconds
                  : 0.25);
          while (!shardOver.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(interval);
            if (shardOver.load(std::memory_order_relaxed)) break;
            HeartbeatMsg hb;
            hb.shard = assign.shard;
            hb.trialsDone = trialsDone.load(std::memory_order_relaxed);
            if (!sender.send(MsgType::Heartbeat, encode_heartbeat(hb))) {
              // Coordinator gone: abandon the shard now instead of burning
              // CPU on results nobody will collect.
              abandon.cancel(CancelToken::Reason::Cancelled);
              return;
            }
          }
        });
        Mutex doneMu;
        std::vector<int> finished;
        for (const int id : assign.ids) {
          pool.submit([&, id] {
            if (abandon.cancelled()) return;
            const runtime::TrialStatus status = engine->run_trial(id, abandon);
            if (status == runtime::TrialStatus::Cancelled) return;
            trialsDone.fetch_add(1, std::memory_order_relaxed);
            MutexLock lock(doneMu);
            finished.push_back(id);
          });
        }
        pool.wait_idle();
        shardOver.store(true, std::memory_order_relaxed);
        heartbeat.join();
        if (abandon.cancelled()) return false; // reconnect path

        std::sort(finished.begin(), finished.end());
        ShardResultMsg result;
        result.shard = assign.shard;
        result.blob = engine->serialize(finished);
        if (!sender.send(MsgType::ShardResult, encode_shard_result(result)))
          return false;
        ++outcome.shardsCompleted;
        break;
      }
      case MsgType::Idle:
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        if (!sender.send(MsgType::Ready, encode_ready(ready))) return false;
        break;
      case MsgType::Shutdown:
        outcome.shutdownReceived = true;
        return true;
      case MsgType::Error: {
        ErrorMsg err;
        log_warn("worker: coordinator error: " +
                 (parse_error(frame.payload, err) ? err.message
                                                  : std::string("<malformed>")));
        return false;
      }
      default:
        log_warn(std::string("worker: unexpected ") +
                 msg_type_name(frame.type) + " frame; dropping connection");
        return false;
    }
  }
}

} // namespace

WorkerOutcome run_worker(const WorkerOptions& options) {
  if (options.endpoint.empty())
    throw std::runtime_error("worker: --endpoint is required");
  Endpoint endpoint;
  {
    std::string error;
    if (!parse_endpoint(options.endpoint, endpoint, error))
      throw std::runtime_error("worker: " + error);
  }
  if (options.threads < 1)
    throw std::runtime_error("worker: --threads must be >= 1");

  WorkerOutcome outcome;
  std::unique_ptr<CampaignEngine> engine;
  std::string cachedBlob;
  ThreadPool pool(static_cast<unsigned>(options.threads));

  Backoff backoff(options.reconnectInitialMs > 0 ? options.reconnectInitialMs
                                                 : 50,
                  options.reconnectCapMs > 0 ? options.reconnectCapMs : 2000);
  // DETLINT-ALLOW(DET001): reconnect budget anchor — connection scheduling
  // only, never campaign results.
  auto lastContact = Clock::now();
  const auto budget = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(options.reconnectBudgetSeconds > 0.0
                                        ? options.reconnectBudgetSeconds
                                        : 30.0));
  bool everConnected = false;

  for (;;) {
    Socket sock = Socket::connect_endpoint(
        endpoint,
        options.connectTimeoutMs > 0 ? options.connectTimeoutMs : 2000);
    if (sock.valid()) {
      if (everConnected) ++outcome.reconnects;
      everConnected = true;
      backoff.reset();
      bool heard = false;
      const bool clean =
          run_session(sock, options, engine, cachedBlob, pool, outcome, heard);
      if (clean) return outcome;
      // Only a session in which the coordinator actually SPOKE (a valid
      // Welcome) refreshes the budget. connect() succeeding proves nothing:
      // a listener whose process is wedged, or a proxy whose upstream died,
      // still accepts the dial.
      // DETLINT-ALLOW(DET001): reconnect budget — scheduling only.
      if (heard) lastContact = Clock::now();
    }
    // DETLINT-ALLOW(DET001): reconnect budget — scheduling only.
    if (Clock::now() - lastContact >= budget) {
      outcome.error = "worker: no coordinator at '" + options.endpoint +
                      "' within the reconnect budget";
      log_warn(outcome.error);
      return outcome;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff.next_ms()));
  }
}

} // namespace nvff::dist
