#include "dist/netchaos.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <poll.h>
#include <sys/socket.h>

#include "dist/channel.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace nvff::dist {

namespace {

using Clock = std::chrono::steady_clock;

/// Scheduler tick. Short enough that injected latency has ~10 ms
/// granularity, long enough that an idle proxy costs nothing.
constexpr int kTickMs = 10;
/// Per-pipe staging cap: stop reading from the source once this much is
/// waiting, so a throttled destination exerts back-pressure instead of
/// ballooning proxy memory.
constexpr std::size_t kPipeCap = 64 * 1024;
/// Dribble still writes one byte per send(), but gets this many writes per
/// tick so a fragmented handshake completes in seconds, not minutes.
constexpr int kDribbleWritesPerTick = 256;

const char* kChaosClassNames[] = {"clean",     "latency", "throttle", "dribble",
                                  "reset",     "blackhole", "corrupt"};

/// One relay direction with its staged bytes. `releaseAt` implements the
/// latency profile: bytes staged into an empty pipe are held until the
/// connection's one-way delay has passed.
struct Pipe {
  std::string buf;
  bool srcEof = false;
  bool eofSent = false; ///< SHUT_WR already propagated downstream
  Clock::time_point releaseAt{};
};

struct ChaosConn {
  ChaosConn(Socket c, Socket u, long ord) : client(std::move(c)),
                                            upstream(std::move(u)),
                                            ordinal(ord) {}
  Socket client;
  Socket upstream;
  long ordinal;
  ChaosClass profile = ChaosClass::Clean;
  // Profile parameters (all seed-derived at accept time).
  int latencyMs = 0;
  long throttleBytesPerTick = 0;
  long resetAfterBytes = 0;
  long nextCorruptAt = 0;  ///< forwarded-byte index of the next bit flip
  long corruptStride = 0;
  int corruptBit = 0;
  long forwarded = 0;      ///< both directions, drives reset/corrupt offsets
  Pipe up;    ///< client -> upstream
  Pipe down;  ///< upstream -> client
  Rng rng{0};
};

std::vector<ChaosClass> enabled_classes(const NetChaosOptions& o) {
  std::vector<ChaosClass> classes;
  if (o.enableLatency) classes.push_back(ChaosClass::Latency);
  if (o.enableThrottle) classes.push_back(ChaosClass::Throttle);
  if (o.enableDribble) classes.push_back(ChaosClass::Dribble);
  if (o.enableReset) classes.push_back(ChaosClass::Reset);
  if (o.enableBlackhole) classes.push_back(ChaosClass::Blackhole);
  if (o.enableCorrupt) classes.push_back(ChaosClass::Corrupt);
  return classes;
}

/// Draws the connection's fault profile and parameters from its dedicated
/// RNG stream. The stream depends only on (seed, ordinal) — never on timing
/// — which is what makes a chaos run replayable.
void assign_profile(ChaosConn& conn, const NetChaosOptions& options,
                    const std::vector<ChaosClass>& classes) {
  conn.rng = Rng::stream(options.seed, static_cast<std::uint64_t>(conn.ordinal));
  if (classes.empty() || conn.rng.chance(options.cleanShare)) {
    conn.profile = ChaosClass::Clean;
  } else {
    conn.profile = classes[static_cast<std::size_t>(
        conn.rng.uniform_index(classes.size()))];
  }
  switch (conn.profile) {
    case ChaosClass::Latency:
      conn.latencyMs = 20 + static_cast<int>(conn.rng.uniform_index(80));
      break;
    case ChaosClass::Throttle:
      conn.throttleBytesPerTick =
          256 + static_cast<long>(conn.rng.uniform_index(768));
      break;
    case ChaosClass::Reset:
      conn.resetAfterBytes =
          200 + static_cast<long>(conn.rng.uniform_index(3800));
      break;
    case ChaosClass::Corrupt:
      conn.corruptStride =
          500 + static_cast<long>(conn.rng.uniform_index(2000));
      conn.nextCorruptAt =
          static_cast<long>(conn.rng.uniform_index(
              static_cast<std::uint64_t>(conn.corruptStride)));
      conn.corruptBit = static_cast<int>(conn.rng.uniform_index(8));
      break;
    default:
      break;
  }
}

} // namespace

const char* chaos_class_name(ChaosClass c) {
  return kChaosClassNames[static_cast<int>(c)];
}

NetChaosOutcome run_netchaos(const NetChaosOptions& options) {
  Endpoint listenEp, upstreamEp;
  std::string error;
  if (!parse_endpoint(options.listenEndpoint, listenEp, error))
    throw std::runtime_error("netchaos: --listen: " + error);
  if (!parse_endpoint(options.upstreamEndpoint, upstreamEp, error))
    throw std::runtime_error("netchaos: --upstream: " + error);

  NetChaosOutcome outcome;
  Endpoint bound;
  Socket listener = Socket::listen_endpoint(listenEp, error, bound);
  if (!listener.valid())
    throw std::runtime_error("netchaos: cannot listen on '" +
                             options.listenEndpoint + "': " + error);
  outcome.boundEndpoint = bound.to_string();
  if (options.onListening) options.onListening(bound);

  const std::vector<ChaosClass> classes = enabled_classes(options);
  std::vector<std::unique_ptr<ChaosConn>> conns;
  long nextOrdinal = 0;

  const bool haveBudget = options.runSeconds > 0.0;
  // DETLINT-ALLOW(DET001): proxy run budget — relay scheduling only; the
  // fault SCHEDULE derives purely from the seed, and campaign results are
  // invariant under any network weather by protocol design.
  const auto started = Clock::now();
  const auto deadline =
      started + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        haveBudget ? options.runSeconds : 0.0));

  char buffer[16384];
  for (;;) {
    if (options.stop && options.stop->load(std::memory_order_relaxed)) break;
    // DETLINT-ALLOW(DET001): proxy tick — relay scheduling only.
    const auto now = Clock::now();
    if (haveBudget && now >= deadline) break;

    // --- poll for readable sources (writes are retried every tick) --------
    std::vector<pollfd> fds;
    fds.push_back({listener.fd(), POLLIN, 0});
    // fdIndex[i] = {client slot, upstream slot} of conns[i]; -1 = not polled.
    std::vector<std::pair<int, int>> fdIndex(conns.size(), {-1, -1});
    for (std::size_t i = 0; i < conns.size(); ++i) {
      ChaosConn& conn = *conns[i];
      // A black hole neither forwards nor drains: by never reading, the
      // proxy lets the sender's kernel buffer fill until its send deadline
      // fires — exactly the stalled-peer scenario the coordinator's
      // quarantine ladder is specified against.
      if (conn.profile == ChaosClass::Blackhole) continue;
      if (!conn.up.srcEof && conn.up.buf.size() < kPipeCap) {
        fdIndex[i].first = static_cast<int>(fds.size());
        fds.push_back({conn.client.fd(), POLLIN, 0});
      }
      if (!conn.down.srcEof && conn.down.buf.size() < kPipeCap) {
        fdIndex[i].second = static_cast<int>(fds.size());
        fds.push_back({conn.upstream.fd(), POLLIN, 0});
      }
    }
    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), kTickMs);
    if (rc < 0 && errno != EINTR)
      throw std::runtime_error("netchaos: poll failed");

    // --- accept -----------------------------------------------------------
    if (rc > 0 && (fds[0].revents & POLLIN) != 0) {
      Socket client = listener.accept_pending();
      if (client.valid()) {
        Socket up = Socket::connect_endpoint(upstreamEp,
                                             options.connectTimeoutMs);
        if (!up.valid()) {
          log_warn("netchaos: upstream '" + options.upstreamEndpoint +
                   "' unreachable; dropping client");
        } else {
          auto conn = std::make_unique<ChaosConn>(std::move(client),
                                                  std::move(up), nextOrdinal++);
          assign_profile(*conn, options, classes);
          ++outcome.connections;
          if (conn->profile == ChaosClass::Blackhole) ++outcome.blackholes;
          log_warn("netchaos: conn #" + std::to_string(conn->ordinal) +
                   " profile=" + chaos_class_name(conn->profile));
          conns.push_back(std::move(conn));
        }
      }
    }

    // --- stage reads ------------------------------------------------------
    // fdIndex covers only the connections that existed at poll time; a conn
    // accepted this tick waits until the next round.
    for (std::size_t i = 0; i < fdIndex.size(); ++i) {
      ChaosConn& conn = *conns[i];
      auto stage = [&](int slot, Socket& src, Pipe& pipe) {
        if (slot < 0 || rc <= 0) return;
        if ((fds[static_cast<std::size_t>(slot)].revents &
             (POLLIN | POLLHUP | POLLERR)) == 0)
          return;
        const long got = src.recv_some(buffer, sizeof(buffer), 0);
        if (got < 0) {
          pipe.srcEof = true;
          return;
        }
        if (got == 0) return;
        if (pipe.buf.empty() && conn.latencyMs > 0)
          pipe.releaseAt = now + std::chrono::milliseconds(conn.latencyMs);
        pipe.buf.append(buffer, static_cast<std::size_t>(got));
      };
      stage(fdIndex[i].first, conn.client, conn.up);
      stage(fdIndex[i].second, conn.upstream, conn.down);
    }

    // --- forward, under the connection's profile --------------------------
    for (std::size_t i = conns.size(); i-- > 0;) {
      ChaosConn& conn = *conns[i];
      if (conn.profile == ChaosClass::Blackhole) continue;
      bool dead = false;
      auto forward = [&](Pipe& pipe, Socket& dst) {
        if (dead || pipe.buf.empty()) {
          // Propagate EOF once the staged bytes are fully relayed. One-shot:
          // a second SHUT_WR on the same socket is an audit-flagged no-op
          // (and EPIPE-prone on some stacks), not a retry.
          if (!dead && pipe.srcEof && !pipe.eofSent && pipe.buf.empty() &&
              dst.valid()) {
            ::shutdown(dst.fd(), SHUT_WR);
            pipe.eofSent = true;
          }
          return;
        }
        if (conn.latencyMs > 0 && now < pipe.releaseAt) return;
        long budget = static_cast<long>(pipe.buf.size());
        if (conn.profile == ChaosClass::Throttle)
          budget = std::min<long>(budget, conn.throttleBytesPerTick);
        int writesLeft = conn.profile == ChaosClass::Dribble
                             ? kDribbleWritesPerTick
                             : 1;
        const long chunk = conn.profile == ChaosClass::Dribble ? 1 : budget;
        while (budget > 0 && writesLeft-- > 0) {
          const long want = std::min<long>(chunk, budget);
          if (conn.profile == ChaosClass::Corrupt) {
            // Flip every due position inside this chunk. Positions are
            // absolute forwarded-byte offsets, so partial writes stay
            // consistent: a corrupted-but-unwritten byte waits in the
            // staging buffer with its damage already applied.
            for (long off = conn.nextCorruptAt - conn.forwarded;
                 off >= 0 && off < want;
                 off = conn.nextCorruptAt - conn.forwarded) {
              pipe.buf[static_cast<std::size_t>(off)] = static_cast<char>(
                  pipe.buf[static_cast<std::size_t>(off)] ^
                  (1 << conn.corruptBit));
              ++outcome.corruptions;
              conn.nextCorruptAt += conn.corruptStride;
              conn.corruptBit = static_cast<int>(conn.rng.uniform_index(8));
            }
          }
          const long wrote =
              dst.send_some(std::string_view(pipe.buf.data(),
                                             static_cast<std::size_t>(want)));
          if (wrote < 0) {
            dead = true;
            return;
          }
          if (wrote == 0) return; // destination buffer full; retry next tick
          pipe.buf.erase(0, static_cast<std::size_t>(wrote));
          budget -= wrote;
          conn.forwarded += wrote;
          outcome.bytesForwarded += wrote;
          if (conn.profile == ChaosClass::Reset &&
              conn.forwarded >= conn.resetAfterBytes) {
            // Abrupt close mid-stream — likely mid-frame. Both framing
            // decoders must classify the truncation and both peers must
            // walk their reconnect/re-dispatch paths.
            ++outcome.resets;
            log_warn("netchaos: conn #" + std::to_string(conn.ordinal) +
                     " reset after " + std::to_string(conn.forwarded) +
                     " bytes");
            dead = true;
            return;
          }
        }
      };
      forward(conn.up, conn.upstream);
      forward(conn.down, conn.client);
      const bool drained = conn.up.srcEof && conn.up.buf.empty() &&
                           conn.down.srcEof && conn.down.buf.empty();
      if (dead || drained)
        conns.erase(conns.begin() + static_cast<long>(i));
    }
  }

  return outcome;
}

} // namespace nvff::dist
