// Flip-flop grouping for N-bit shadow cells (the scalability extension of
// the paper's pairing step): partition placed flip-flops into groups of up
// to `groupSize` mutually close members, each group sharing one scalable
// N-bit NV cell.
//
// The constraint generalizes the paper's pairing rule: every member of a
// group must lie within `maxDistance` (the width budget of the merged cell)
// of the group's seed. Greedy seeding by local density plus a balanced
// k-nearest gather keeps the algorithm at the complexity of a DEF script,
// like the paper's.
#pragma once

#include "pairing/pairing.hpp"

namespace nvff::pairing {

struct Group {
  std::vector<int> members; ///< site indices, 2..groupSize of them
  double spanUm = 0.0;      ///< max member distance from the seed
};

struct GroupingResult {
  std::vector<Group> groups;   ///< only groups with >= 2 members
  std::vector<int> ungrouped;  ///< left as 1-bit cells
  SampleSet groupSizes;

  /// Number of flip-flops absorbed into multi-bit cells.
  std::size_t grouped_ffs() const;
};

struct GroupingOptions {
  int groupSize = 4;          ///< capacity of one N-bit cell
  double maxDistance = 3.35;  ///< [um] distance budget from the group seed
  bool requireFull = false;   ///< only emit exactly-full groups
};

/// Greedy density-seeded grouping.
GroupingResult group_flip_flops(const std::vector<FlipFlopSite>& sites,
                                const GroupingOptions& options);

} // namespace nvff::pairing
