#include "pairing/pairing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace nvff::pairing {
namespace {

double site_distance(const FlipFlopSite& a, const FlipFlopSite& b,
                     const PairingOptions& options) {
  if (options.sameRowOnly) {
    // Different rows never pair; same row pairs by horizontal distance.
    const double rowA = std::floor(a.y / options.rowHeight + 0.5);
    const double rowB = std::floor(b.y / options.rowHeight + 0.5);
    if (rowA != rowB) return std::numeric_limits<double>::infinity();
    return std::fabs(a.x - b.x);
  }
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

} // namespace

std::vector<Pair> candidate_edges(const std::vector<FlipFlopSite>& sites,
                                  const PairingOptions& options) {
  std::vector<Pair> edges;
  if (sites.empty() || options.maxDistance <= 0.0) return edges;

  // Uniform grid binning: only neighbouring bins can hold candidates.
  const double cell = options.maxDistance;
  std::unordered_map<long long, std::vector<int>> bins;
  auto key = [&](double x, double y) {
    const auto bx = static_cast<long long>(std::floor(x / cell));
    const auto by = static_cast<long long>(std::floor(y / cell));
    return bx * 1000003LL + by;
  };
  for (std::size_t i = 0; i < sites.size(); ++i) {
    bins[key(sites[i].x, sites[i].y)].push_back(static_cast<int>(i));
  }
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const auto bx = static_cast<long long>(std::floor(sites[i].x / cell));
    const auto by = static_cast<long long>(std::floor(sites[i].y / cell));
    for (long long dx = -1; dx <= 1; ++dx) {
      for (long long dy = -1; dy <= 1; ++dy) {
        const auto it = bins.find((bx + dx) * 1000003LL + (by + dy));
        if (it == bins.end()) continue;
        for (int j : it->second) {
          if (j <= static_cast<int>(i)) continue;
          const double d = site_distance(sites[i], sites[j], options);
          if (d <= options.maxDistance) {
            edges.push_back({static_cast<int>(i), j, d});
          }
        }
      }
    }
  }
  return edges;
}

PairingResult pair_flip_flops(const std::vector<FlipFlopSite>& sites,
                              const PairingOptions& options) {
  PairingResult result;
  std::vector<Pair> edges = candidate_edges(sites, options);
  std::sort(edges.begin(), edges.end(),
            [](const Pair& a, const Pair& b) { return a.distance < b.distance; });

  std::vector<int> match(sites.size(), -1);
  for (const auto& e : edges) {
    if (match[static_cast<std::size_t>(e.a)] < 0 &&
        match[static_cast<std::size_t>(e.b)] < 0) {
      match[static_cast<std::size_t>(e.a)] = e.b;
      match[static_cast<std::size_t>(e.b)] = e.a;
    }
  }

  if (options.algorithm == MatchAlgorithm::GreedyImproved) {
    // Length-3 alternating-path improvement: an unmatched u adjacent to a
    // matched v (v-w) can free w; if w has another unmatched neighbour z,
    // re-pairing as (u,v) + (w,z) gains one pair. Iterate to fixpoint.
    std::vector<std::vector<int>> adjacency(sites.size());
    for (const auto& e : edges) {
      adjacency[static_cast<std::size_t>(e.a)].push_back(e.b);
      adjacency[static_cast<std::size_t>(e.b)].push_back(e.a);
    }
    bool improved = true;
    int rounds = 0;
    while (improved && rounds < 16) {
      improved = false;
      ++rounds;
      for (std::size_t u = 0; u < sites.size(); ++u) {
        if (match[u] >= 0) continue;
        bool done = false;
        for (int v : adjacency[u]) {
          const int w = match[static_cast<std::size_t>(v)];
          if (w < 0) {
            // Direct free edge (can happen after other swaps).
            match[u] = v;
            match[static_cast<std::size_t>(v)] = static_cast<int>(u);
            improved = true;
            done = true;
            break;
          }
          for (int z : adjacency[static_cast<std::size_t>(w)]) {
            if (z == v || match[static_cast<std::size_t>(z)] >= 0 ||
                static_cast<std::size_t>(z) == u) {
              continue;
            }
            match[u] = v;
            match[static_cast<std::size_t>(v)] = static_cast<int>(u);
            match[static_cast<std::size_t>(w)] = z;
            match[static_cast<std::size_t>(z)] = w;
            improved = true;
            done = true;
            break;
          }
          if (done) break;
        }
      }
    }
  }

  for (std::size_t i = 0; i < sites.size(); ++i) {
    const int m = match[i];
    if (m < 0) {
      result.unmatched.push_back(static_cast<int>(i));
    } else if (static_cast<int>(i) < m) {
      const double d = site_distance(sites[i], sites[static_cast<std::size_t>(m)],
                                     options);
      result.pairs.push_back({static_cast<int>(i), m, d});
      result.pairDistances.add(d);
    }
  }
  return result;
}

namespace {

std::size_t max_matching_mask(const std::vector<std::vector<int>>& adjacency,
                              unsigned mask, std::vector<int>& memo) {
  if (memo[mask] >= 0) return static_cast<std::size_t>(memo[mask]);
  // Find lowest set bit (unprocessed vertex).
  int u = -1;
  for (std::size_t i = 0; i < adjacency.size(); ++i) {
    if (mask & (1u << i)) {
      u = static_cast<int>(i);
      break;
    }
  }
  if (u < 0) {
    memo[mask] = 0;
    return 0;
  }
  // Option 1: leave u unmatched.
  std::size_t best = max_matching_mask(adjacency, mask & ~(1u << u), memo);
  // Option 2: match u with any available neighbour.
  for (int v : adjacency[static_cast<std::size_t>(u)]) {
    if (!(mask & (1u << v))) continue;
    best = std::max(best, 1 + max_matching_mask(
                              adjacency, mask & ~(1u << u) & ~(1u << v), memo));
  }
  memo[mask] = static_cast<int>(best);
  return best;
}

} // namespace

std::size_t exact_max_matching(const std::vector<FlipFlopSite>& sites,
                               const PairingOptions& options) {
  if (sites.size() > 20) {
    throw std::invalid_argument("exact_max_matching: too many sites (max 20)");
  }
  const auto edges = candidate_edges(sites, options);
  std::vector<std::vector<int>> adjacency(sites.size());
  for (const auto& e : edges) {
    adjacency[static_cast<std::size_t>(e.a)].push_back(e.b);
    adjacency[static_cast<std::size_t>(e.b)].push_back(e.a);
  }
  std::vector<int> memo(1u << sites.size(), -1);
  return max_matching_mask(adjacency, (1u << sites.size()) - 1, memo);
}

} // namespace nvff::pairing
