#include "pairing/grouping.hpp"

#include <algorithm>
#include <cmath>

namespace nvff::pairing {

std::size_t GroupingResult::grouped_ffs() const {
  std::size_t n = 0;
  for (const auto& g : groups) n += g.members.size();
  return n;
}

GroupingResult group_flip_flops(const std::vector<FlipFlopSite>& sites,
                                const GroupingOptions& options) {
  GroupingResult result;
  if (options.groupSize < 2) {
    result.ungrouped.resize(sites.size());
    for (std::size_t i = 0; i < sites.size(); ++i) {
      result.ungrouped[i] = static_cast<int>(i);
    }
    return result;
  }

  // Neighbour lists within the distance budget (reuse the pairing grid).
  PairingOptions edgeOpt;
  edgeOpt.maxDistance = options.maxDistance;
  const auto edges = candidate_edges(sites, edgeOpt);
  std::vector<std::vector<std::pair<double, int>>> neighbours(sites.size());
  for (const auto& e : edges) {
    neighbours[static_cast<std::size_t>(e.a)].push_back({e.distance, e.b});
    neighbours[static_cast<std::size_t>(e.b)].push_back({e.distance, e.a});
  }
  for (auto& list : neighbours) std::sort(list.begin(), list.end());

  // Seed order: densest neighbourhoods first — they fill complete groups,
  // sparse outskirts are handled last.
  std::vector<std::size_t> order(sites.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return neighbours[a].size() > neighbours[b].size();
  });

  std::vector<char> taken(sites.size(), 0);
  for (std::size_t seed : order) {
    if (taken[seed]) continue;
    Group group;
    group.members.push_back(static_cast<int>(seed));
    for (const auto& [dist, idx] : neighbours[seed]) {
      if (group.members.size() >= static_cast<std::size_t>(options.groupSize)) break;
      if (taken[static_cast<std::size_t>(idx)]) continue;
      group.members.push_back(idx);
      group.spanUm = std::max(group.spanUm, dist);
    }
    const bool keep =
        options.requireFull
            ? group.members.size() == static_cast<std::size_t>(options.groupSize)
            : group.members.size() >= 2;
    if (!keep) continue;
    for (int m : group.members) taken[static_cast<std::size_t>(m)] = 1;
    result.groupSizes.add(static_cast<double>(group.members.size()));
    result.groups.push_back(std::move(group));
  }
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (!taken[i]) result.ungrouped.push_back(static_cast<int>(i));
  }
  return result;
}

} // namespace nvff::pairing
