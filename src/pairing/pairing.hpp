// Flip-flop pairing: the paper's "script executed over the DEF file"
// (Sec. IV-C). Finds flip-flop pairs closer than the distance threshold
// (twice the width of the standard NV component, <= 3.35 um) and matches
// them so each FF joins at most one 2-bit cell.
//
// Greedy matching (sorted by distance) is what a practical script does; the
// local-improvement matcher augments it toward maximum cardinality so we can
// also quantify how much the simple script leaves on the table (an ablation
// the paper does not run).
#pragma once

#include <string>
#include <vector>

#include "util/stats.hpp"

namespace nvff::pairing {

struct FlipFlopSite {
  std::string name;
  double x = 0.0; ///< center [um]
  double y = 0.0; ///< center [um]
};

struct Pair {
  int a = -1; ///< index into the site list
  int b = -1;
  double distance = 0.0; ///< [um]
};

struct PairingResult {
  std::vector<Pair> pairs;
  std::vector<int> unmatched; ///< site indices left as 1-bit cells
  SampleSet pairDistances;

  std::size_t num_pairs() const { return pairs.size(); }
  /// Fraction of flip-flops absorbed into 2-bit cells.
  double paired_fraction(std::size_t totalFfs) const {
    return totalFfs == 0
               ? 0.0
               : 2.0 * static_cast<double>(pairs.size()) / static_cast<double>(totalFfs);
  }
};

enum class MatchAlgorithm {
  Greedy,           ///< sort candidate edges by distance, take greedily
  GreedyImproved,   ///< greedy + alternating-path local improvement
};

struct PairingOptions {
  double maxDistance = 3.35;    ///< [um], paper's threshold
  MatchAlgorithm algorithm = MatchAlgorithm::GreedyImproved;
  /// Distance metric: center-to-center Euclidean (default) or same-row
  /// horizontal distance only (stricter: merged cells occupy one row pair).
  bool sameRowOnly = false;
  double rowHeight = 1.68; ///< [um], used when sameRowOnly is set
};

/// Runs the pairing over flip-flop sites.
PairingResult pair_flip_flops(const std::vector<FlipFlopSite>& sites,
                              const PairingOptions& options = {});

/// Candidate edges within the threshold (exposed for tests/ablations).
std::vector<Pair> candidate_edges(const std::vector<FlipFlopSite>& sites,
                                  const PairingOptions& options);

/// Exact maximum matching by exhaustive search; only for <= ~20 sites
/// (tests use it as the ground truth for the heuristics).
std::size_t exact_max_matching(const std::vector<FlipFlopSite>& sites,
                               const PairingOptions& options);

} // namespace nvff::pairing
