#include "reliability/montecarlo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "cell/multibit_latch.hpp"
#include "cell/standard_latch.hpp"
#include "mtj/device.hpp"
#include "reliability/checkpoint.hpp"
#include "spice/trace.hpp"
#include "util/rng.hpp"

namespace nvff::reliability {

using cell::MultibitLatchInstance;
using cell::MultibitNvLatch;
using cell::StandardLatchInstance;
using cell::StandardNvLatch;
using mtj::MtjDefect;
using mtj::MtjModel;
using mtj::MtjOrientation;
using mtj::MtjParams;
using spice::SolveReport;
using spice::SolveStatus;
using spice::Trace;
using spice::TransientOptions;

const char* outcome_name(TrialOutcome outcome) {
  switch (outcome) {
    case TrialOutcome::Pass: return "pass";
    case TrialOutcome::Metastable: return "metastable";
    case TrialOutcome::BitError: return "bit-error";
    case TrialOutcome::WriteFailure: return "write-fail";
    case TrialOutcome::SolverFailure: return "solver-fail";
    case TrialOutcome::Unclassified: return "unclassified";
  }
  return "?";
}

const char* design_name(Design design) {
  switch (design) {
    case Design::StandardPair: return "2x standard 1-bit";
    case Design::Proposed2Bit: return "proposed 2-bit";
  }
  return "?";
}

namespace {

std::string fmt(const char* f, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof(buf), f, ap);
  va_end(ap);
  return buf;
}

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// One restored bit: the sensed level (out vs outb differential) and its
/// normalized margin at the capture instant.
struct BitObservation {
  bool levelOk = false;
  double margin = 0.0;
};

/// Everything a single simulated cell contributes to classification.
struct CellObservation {
  SolveReport report;
  bool writeOk = true;
  std::vector<BitObservation> bits;
};

/// Per-cell severity; TrialOutcome enumerators are declared in rising
/// severity order so std::max combines cells.
TrialOutcome classify_cell(const CellObservation& obs, double threshold) {
  if (obs.report.status != SolveStatus::Converged) return TrialOutcome::SolverFailure;
  if (!obs.writeOk) return TrialOutcome::WriteFailure;
  bool anyWrong = false;
  bool anyWeak = false;
  for (const BitObservation& bit : obs.bits) {
    if (!bit.levelOk) anyWrong = true;
    else if (bit.margin < threshold) anyWeak = true;
  }
  if (anyWrong) return TrialOutcome::BitError;
  if (anyWeak) return TrialOutcome::Metastable;
  return TrialOutcome::Pass;
}

/// Folds the cells of one design (two for the standard pair, one for the
/// proposed latch) into the trial-level record.
DesignTrialResult combine_cells(const std::vector<CellObservation>& cells,
                                double threshold) {
  DesignTrialResult r;
  r.outcome = TrialOutcome::Pass;
  r.margin = kNaN;
  double minMargin = std::numeric_limits<double>::infinity();
  bool anyMargin = false;
  for (const CellObservation& cell : cells) {
    r.outcome = std::max(r.outcome, classify_cell(cell, threshold));
    r.retriesUsed += cell.report.retriesUsed;
    r.subdivisions += cell.report.subdivisions;
    r.iterations += cell.report.iterations;
    if (cell.report.status != SolveStatus::Converged) {
      if (r.solveStatus == SolveStatus::Converged) {
        r.solveStatus = cell.report.status;
        r.note = cell.report.message;
      }
      continue;
    }
    for (const BitObservation& bit : cell.bits) {
      if (!bit.levelOk || bit.margin < threshold) ++r.bitErrors;
      minMargin = std::min(minMargin, bit.margin);
      anyMargin = true;
    }
  }
  // A design with any unsimulatable cell has no trustworthy bits: report no
  // margin and let the summary exclude it from BER statistics.
  if (r.outcome == TrialOutcome::SolverFailure) {
    r.bitErrors = 0;
    r.margin = kNaN;
  } else if (anyMargin) {
    r.margin = minMargin;
  }
  return r;
}

/// Stored-bit encodings (must match the builders' conventions; the standard
/// latch keeps D on the out-side pillar as AP, the 2-bit latch stores D0 in
/// the lower pair as AP-on-out and D1 in the upper pair as P-on-out).
MtjOrientation std_out_state(bool d) {
  return d ? MtjOrientation::AntiParallel : MtjOrientation::Parallel;
}
MtjOrientation opposite(MtjOrientation o) {
  return o == MtjOrientation::Parallel ? MtjOrientation::AntiParallel
                                       : MtjOrientation::Parallel;
}

/// The process point of one trial, drawn up-front in a fixed order so both
/// designs see the SAME sampled pillars (paired comparison / common random
/// numbers), independent of scheduling.
struct TrialSample {
  bool d0 = false;
  bool d1 = false;
  cell::TechCorner corner;
  MtjParams pillar[4]; ///< 0/1: bit-0 out/outb side, 2/3: bit-1 out/outb side
  bool defectInjected = false;
  int defectVictim = 0;
  MtjDefect defectKind = MtjDefect::None;
  std::uint64_t mismatchSeedStandard = 0;
  std::uint64_t mismatchSeedProposed = 0;
};

TrialSample draw_sample(const CampaignConfig& config, const cell::Technology& tech,
                        Rng& rng) {
  TrialSample s;
  s.d0 = rng.chance(0.5);
  s.d1 = rng.chance(0.5);
  s.corner = tech.read_corner(cell::Corner::Typical);
  // Global per-trial corner jitter: both polarities shift independently.
  s.corner.nmos.vth += rng.normal(0.0, config.cornerJitterVth);
  s.corner.pmos.vth += rng.normal(0.0, config.cornerJitterVth);
  // Defect variables are always drawn (stream layout does not depend on the
  // defect rate), then gated by the Bernoulli draw.
  s.defectVictim = static_cast<int>(rng.uniform_index(4));
  s.defectKind = static_cast<MtjDefect>(1 + rng.uniform_index(4));
  s.defectInjected = rng.chance(config.defectRate);
  for (MtjParams& p : s.pillar)
    p = s.corner.mtj.sample(rng, config.sigmaScale);
  s.mismatchSeedStandard = rng.next_u64();
  s.mismatchSeedProposed = rng.next_u64();
  return s;
}

/// Per-worker-thread compiled deck pool. Deck structure depends only on the
/// campaign's power-cycle timing (the technology is the fixed Table I set and
/// data values key the array), so each worker compiles six decks once — two
/// standard (d = 0/1) and four 2-bit (all d0/d1 combinations) — and patches
/// corner / Vth mismatch / MTJ state per trial instead of rebuilding.
struct DeckPool {
  cell::PowerCycleTiming timing;
  std::unique_ptr<cell::StandardPowerCycleDeck> standard[2];
  std::unique_ptr<cell::MultibitPowerCycleDeck> proposed[4];
};

bool same_timing(const cell::PowerCycleTiming& a, const cell::PowerCycleTiming& b) {
  return a.write.start == b.write.start && a.write.duration == b.write.duration &&
         a.write.tail == b.write.tail && a.write.ramp == b.write.ramp &&
         a.offRamp == b.offRamp && a.offDuration == b.offDuration &&
         a.onRamp == b.onRamp && a.wakeSettle == b.wakeSettle &&
         a.read.start == b.read.start && a.read.precharge == b.read.precharge &&
         a.read.evaluate == b.read.evaluate && a.read.gap == b.read.gap &&
         a.read.ramp == b.read.ramp;
}

DeckPool& trial_decks(const cell::Technology& tech, const CampaignConfig& config) {
  thread_local std::unique_ptr<DeckPool> pool;
  if (pool == nullptr || !same_timing(pool->timing, config.timing)) {
    auto fresh = std::make_unique<DeckPool>();
    fresh->timing = config.timing;
    // The build corner is arbitrary: patch() re-derives every corner- and
    // trial-dependent value before each simulation.
    const cell::TechCorner base = tech.read_corner(cell::Corner::Typical);
    for (int d = 0; d < 2; ++d) {
      fresh->standard[d] = std::make_unique<cell::StandardPowerCycleDeck>(
          tech, base, d == 1, config.timing);
    }
    for (int v = 0; v < 4; ++v) {
      fresh->proposed[v] = std::make_unique<cell::MultibitPowerCycleDeck>(
          tech, base, (v & 1) != 0, (v & 2) != 0, config.timing);
    }
    pool = std::move(fresh);
  }
  return *pool;
}

/// Runs one simulation (any latch circuit) and reads back the listed
/// captures: (captureTime, expectedHighOut) pairs on out/outb.
CellObservation simulate_cell(spice::Simulator& sim, spice::Circuit& circuit,
                              double tEnd, const CampaignConfig& config, double vdd,
                              const std::vector<std::pair<double, bool>>& captures) {
  CellObservation obs;
  Trace trace;
  trace.watch_node(circuit, "out");
  trace.watch_node(circuit, "outb");
  TransientOptions opt;
  opt.tStop = tEnd;
  opt.dt = config.timestep;
  obs.report = sim.run_transient(opt, trace.observer(), config.recovery);
  if (obs.report.status != SolveStatus::Converged) return obs;
  for (const auto& [tCap, wantHigh] : captures) {
    const double diff =
        trace.value_at("out", tCap) - trace.value_at("outb", tCap);
    BitObservation bit;
    bit.levelOk = (diff > 0.0) == wantHigh;
    bit.margin = std::fabs(diff) / vdd;
    obs.bits.push_back(bit);
  }
  return obs;
}

DesignTrialResult run_standard(const CampaignConfig& config,
                               const cell::Technology& tech,
                               const TrialSample& s) {
  Rng mismatch(s.mismatchSeedStandard);
  DeckPool& decks = trial_decks(tech, config);
  std::vector<CellObservation> cells;
  const double tCap = config.timing.wakeDone() + config.timing.read.evalEnd();
  for (int bit = 0; bit < 2; ++bit) {
    const bool d = bit == 0 ? s.d0 : s.d1;
    // Both bits patch from ONE continuing rng, exactly like the two builds
    // used to, so the per-transistor draw stream is unchanged.
    cell::StandardPowerCycleDeck& deck = *decks.standard[d ? 1 : 0];
    deck.patch(s.corner, &mismatch, config.sigmaVthMismatch);
    StandardLatchInstance& inst = deck.inst;
    inst.mtjOut->set_model(MtjModel(s.pillar[bit * 2 + 0]));
    inst.mtjOutb->set_model(MtjModel(s.pillar[bit * 2 + 1]));
    if (s.defectInjected && s.defectVictim / 2 == bit) {
      (s.defectVictim % 2 == 0 ? inst.mtjOut : inst.mtjOutb)
          ->inject_defect(s.defectKind);
    }
    spice::Simulator sim(deck.compiled, deck.ws);
    CellObservation obs =
        simulate_cell(sim, inst.circuit, inst.tEnd, config, tech.vdd, {{tCap, d}});
    obs.writeOk = inst.mtjOut->orientation() == std_out_state(d) &&
                  inst.mtjOutb->orientation() == opposite(std_out_state(d));
    cells.push_back(std::move(obs));
  }
  return combine_cells(cells, config.marginThreshold);
}

DesignTrialResult run_proposed(const CampaignConfig& config,
                               const cell::Technology& tech,
                               const TrialSample& s) {
  Rng mismatch(s.mismatchSeedProposed);
  DeckPool& decks = trial_decks(tech, config);
  cell::MultibitPowerCycleDeck& deck =
      *decks.proposed[(s.d0 ? 1 : 0) | (s.d1 ? 2 : 0)];
  deck.patch(s.corner, &mismatch, config.sigmaVthMismatch);
  MultibitLatchInstance& inst = deck.inst;
  // Pillar alignment with the standard pair: same draw feeds the pillar
  // holding the same logical bit on the same output side.
  mtj::MtjDevice* byPillar[4] = {inst.mtj3, inst.mtj4, inst.mtj1, inst.mtj2};
  for (int p = 0; p < 4; ++p)
    byPillar[p]->set_model(MtjModel(s.pillar[p]));
  if (s.defectInjected) byPillar[s.defectVictim]->inject_defect(s.defectKind);

  spice::Simulator sim(deck.compiled, deck.ws);
  CellObservation obs =
      simulate_cell(sim, inst.circuit, inst.tEnd, config, tech.vdd,
                    {{inst.tCapture0, s.d0}, {inst.tCapture1, s.d1}});
  // D0 = 1 <=> MTJ3 AP (out discharges slower in phase 1);
  // D1 = 1 <=> MTJ1 P  (out charges faster in phase 2).
  const MtjOrientation want3 = s.d0 ? MtjOrientation::AntiParallel
                                    : MtjOrientation::Parallel;
  const MtjOrientation want1 = s.d1 ? MtjOrientation::Parallel
                                    : MtjOrientation::AntiParallel;
  obs.writeOk = inst.mtj3->orientation() == want3 &&
                inst.mtj4->orientation() == opposite(want3) &&
                inst.mtj1->orientation() == want1 &&
                inst.mtj2->orientation() == opposite(want1);
  std::vector<CellObservation> cells;
  cells.push_back(std::move(obs));
  return combine_cells(cells, config.marginThreshold);
}

DesignTrialResult guarded(const char* what,
                          const std::function<DesignTrialResult()>& body) {
  try {
    return body();
  } catch (const std::exception& e) {
    DesignTrialResult r;
    r.outcome = TrialOutcome::Unclassified;
    r.margin = kNaN;
    r.note = fmt("%s threw: %s", what, e.what());
    return r;
  } catch (...) {
    DesignTrialResult r;
    r.outcome = TrialOutcome::Unclassified;
    r.margin = kNaN;
    r.note = fmt("%s threw a non-std exception", what);
    return r;
  }
}

} // namespace

TrialResult run_trial(const CampaignConfig& baseConfig, int trialId,
                      const CancelToken* cancel) {
  CampaignConfig config = baseConfig;
  config.recovery.cancel = cancel; // threaded down into every Newton solve
  TrialResult trial;
  trial.trialId = trialId;
  const cell::Technology tech = cell::Technology::table1();
  Rng rng = Rng::stream(config.seed, static_cast<std::uint64_t>(trialId));
  TrialSample sample;
  try {
    sample = draw_sample(config, tech, rng);
  } catch (const std::exception& e) {
    // Sampling can only throw if the config pushes a parameter out of its
    // physical range (e.g. absurd sigma scale); both designs share the blame.
    trial.standard.outcome = trial.proposed.outcome = TrialOutcome::Unclassified;
    trial.standard.margin = trial.proposed.margin = kNaN;
    trial.standard.note = trial.proposed.note = fmt("sampling threw: %s", e.what());
    return trial;
  }
  trial.d0 = sample.d0;
  trial.d1 = sample.d1;
  trial.defectInjected = sample.defectInjected;
  trial.defectVictim = sample.defectVictim;
  trial.defectKind = static_cast<int>(sample.defectKind);
  trial.standard = guarded("standard-pair trial",
                           [&] { return run_standard(config, tech, sample); });
  trial.proposed = guarded("proposed-2bit trial",
                           [&] { return run_proposed(config, tech, sample); });
  return trial;
}

double DesignSummary::ber() const {
  return bitsSimulated > 0 ? static_cast<double>(bitErrors) / bitsSimulated : 0.0;
}

double DesignSummary::yield() const {
  return trials > 0 ? static_cast<double>(counts[0]) / trials : 0.0;
}

DesignSummary CampaignResult::summarize(Design design) const {
  DesignSummary s;
  for (const TrialResult& t : trials) {
    const DesignTrialResult& r =
        design == Design::StandardPair ? t.standard : t.proposed;
    ++s.trials;
    ++s.counts[static_cast<int>(r.outcome)];
    if (r.outcome == TrialOutcome::SolverFailure ||
        r.outcome == TrialOutcome::Unclassified)
      continue;
    s.bitsSimulated += 2;
    s.bitErrors += r.bitErrors;
    if (std::isfinite(r.margin)) s.margins.add(r.margin);
  }
  return s;
}

CampaignRun run_campaign_supervised(const CampaignConfig& config,
                                    const runtime::RunOptions& run,
                                    const ProgressFn& progress) {
  if (config.trials <= 0) throw std::runtime_error("campaign needs trials > 0");
  CampaignRun out;
  out.result.config = config;
  out.result.trials.resize(static_cast<std::size_t>(config.trials));
  std::vector<TrialResult>& slots = out.result.trials;

  runtime::SupervisorConfig sup;
  sup.trials = config.trials;
  sup.threads = std::max(1, config.threads);
  sup.run = run;
  sup.progress = progress;

  runtime::CampaignHooks hooks;
  hooks.runTrial = [&](int t, const CancelToken& cancel) {
    TrialResult r = run_trial(config, t, &cancel);
    const bool cancelledSeen =
        r.standard.solveStatus == SolveStatus::Cancelled ||
        r.proposed.solveStatus == SolveStatus::Cancelled;
    slots[static_cast<std::size_t>(t)] = std::move(r);
    const TrialResult& stored = slots[static_cast<std::size_t>(t)];
    if (cancelledSeen) {
      // The watchdog reeled this trial in: record it as a timeout (its
      // designs carry the cancelled solver status); a campaign-wide stop
      // leaves it unrecorded so a resume re-runs it.
      return cancel.reason() == CancelToken::Reason::Timeout
                 ? runtime::TrialStatus::Timeout
                 : runtime::TrialStatus::Cancelled;
    }
    if (stored.standard.outcome == TrialOutcome::Unclassified ||
        stored.proposed.outcome == TrialOutcome::Unclassified)
      // An unexpected exception may be environmental — worth one more shot
      // before it is recorded (and then gates CI as usual).
      return runtime::TrialStatus::Transient;
    return runtime::TrialStatus::Ok;
  };
  hooks.serialize = [&](const std::vector<int>& doneIds) {
    std::vector<TrialResult> finished;
    finished.reserve(doneIds.size());
    for (const int id : doneIds)
      finished.push_back(slots[static_cast<std::size_t>(id)]);
    return serialize_checkpoint(config, finished);
  };
  hooks.deserialize = [&](const std::string& payload) {
    CheckpointData loaded = parse_checkpoint(payload);
    validate_checkpoint(config, loaded.config);
    std::vector<int> ids;
    for (TrialResult& t : loaded.trials) {
      if (t.trialId < 0 || t.trialId >= config.trials) continue;
      ids.push_back(t.trialId);
      slots[static_cast<std::size_t>(t.trialId)] = std::move(t);
    }
    return ids;
  };

  out.supervisor = runtime::run_supervised(sup, hooks);
  return out;
}

CampaignResult run_campaign(const CampaignConfig& config,
                            const std::string& checkpointPath,
                            int checkpointEvery, const ProgressFn& progress) {
  runtime::RunOptions run;
  run.checkpointPath = checkpointPath;
  run.checkpointEvery = checkpointEvery;
  return run_campaign_supervised(config, run, progress).result;
}

std::string render_report(const CampaignResult& result) {
  const CampaignConfig& c = result.config;
  std::string out;
  out += "=== Monte-Carlo reliability: store -> power-off -> restore ===\n";
  out += fmt("trials %d  seed %llu  sigma-scale %.2f  vth-mismatch %.1f mV  "
             "corner-jitter %.1f mV  defect-rate %.3f\n\n",
             c.trials, static_cast<unsigned long long>(c.seed), c.sigmaScale,
             c.sigmaVthMismatch * 1e3, c.cornerJitterVth * 1e3, c.defectRate);

  out += fmt("%-18s %6s %6s %8s %8s %10s %8s  %10s %8s\n", "design", "pass",
             "meta", "bit-err", "wr-fail", "solv-fail", "unclass", "BER",
             "yield");
  const Design designs[] = {Design::StandardPair, Design::Proposed2Bit};
  DesignSummary sums[2];
  for (int i = 0; i < 2; ++i) {
    sums[i] = result.summarize(designs[i]);
    const DesignSummary& s = sums[i];
    out += fmt("%-18s %6ld %6ld %8ld %8ld %10ld %8ld  %10.3e %7.2f%%\n",
               design_name(designs[i]), s.counts[0], s.counts[1], s.counts[2],
               s.counts[3], s.counts[4], s.counts[5], s.ber(),
               100.0 * s.yield());
  }

  out += "\nread margin (|out - outb| / VDD at capture, converged trials):\n";
  out += fmt("  %-18s %7s %7s %7s %7s %7s\n", "design", "p5", "p50", "p95",
             "min", "max");
  for (int i = 0; i < 2; ++i) {
    const SampleSet& m = sums[i].margins;
    if (m.empty()) {
      out += fmt("  %-18s %s\n", design_name(designs[i]), "(no converged trials)");
      continue;
    }
    out += fmt("  %-18s %7.3f %7.3f %7.3f %7.3f %7.3f\n",
               design_name(designs[i]), m.percentile(5.0), m.median(),
               m.percentile(95.0), m.min(), m.max());
  }
  for (int i = 0; i < 2; ++i) {
    if (sums[i].margins.empty()) continue;
    out += fmt("\nmargin histogram, %s:\n", design_name(designs[i]));
    out += sums[i].margins.ascii_histogram(8, 44);
  }
  return out;
}

std::vector<SigmaSweepRow> sigma_sweep(CampaignConfig base,
                                       const std::vector<double>& scales) {
  std::vector<SigmaSweepRow> rows;
  for (double scale : scales) {
    CampaignConfig cfg = base;
    cfg.sigmaScale = scale;
    const CampaignResult res = run_campaign(cfg);
    const DesignSummary std2 = res.summarize(Design::StandardPair);
    const DesignSummary prop = res.summarize(Design::Proposed2Bit);
    SigmaSweepRow row;
    row.sigmaScale = scale;
    row.yieldStandard = std2.yield();
    row.yieldProposed = prop.yield();
    row.berStandard = std2.ber();
    row.berProposed = prop.ber();
    row.p5MarginStandard = std2.margins.empty() ? 0.0 : std2.margins.percentile(5.0);
    row.p5MarginProposed = prop.margins.empty() ? 0.0 : prop.margins.percentile(5.0);
    rows.push_back(row);
  }
  return rows;
}

std::string render_sigma_sweep(const std::vector<SigmaSweepRow>& rows) {
  std::string out;
  out += "yield vs MTJ process spread (sigma-scale multiplies Table I spreads)\n";
  out += fmt("%10s %12s %12s %12s %12s %10s %10s\n", "sigma", "yield(std)",
             "yield(prop)", "BER(std)", "BER(prop)", "p5-mrg(s)", "p5-mrg(p)");
  for (const SigmaSweepRow& r : rows) {
    out += fmt("%10.2f %11.2f%% %11.2f%% %12.3e %12.3e %10.3f %10.3f\n",
               r.sigmaScale, 100.0 * r.yieldStandard, 100.0 * r.yieldProposed,
               r.berStandard, r.berProposed, r.p5MarginStandard,
               r.p5MarginProposed);
  }
  return out;
}

} // namespace nvff::reliability
