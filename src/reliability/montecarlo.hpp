// Monte-Carlo reliability campaign over the NV latch designs.
//
// Every trial runs the full store -> power-off -> wake -> restore cycle for
// BOTH designs (two standard 1-bit cells vs one proposed 2-bit cell) at an
// independently sampled process point: per-pillar MTJ parameters
// (MtjParams::sample), a global CMOS corner jitter, per-transistor local Vth
// mismatch, and an optional injected manufacturing defect. The paper's
// shared-sense-amplifier trade-off lives or dies on read margin under
// exactly this kind of variation (Sec. IV-A stops at +-3 sigma corners; the
// campaign fills in the distribution between them).
//
// Robustness contract: a trial can NEVER escape as an exception. Solver
// trouble is classified (the hardened spice runtime returns SolveReport
// instead of throwing), and anything else unexpected is caught and recorded
// as Unclassified — which the CI smoke campaign treats as a build failure.
//
// Determinism contract: trial t draws every random number from
// Rng::stream(seed, t), trials write into slot t of the result vector, and
// aggregation walks slots in order — so campaign output is bit-identical at
// any thread count, and a checkpoint/resume run matches an uninterrupted
// one sample for sample.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cell/scenarios.hpp"
#include "cell/technology.hpp"
#include "runtime/supervisor.hpp"
#include "spice/analysis.hpp"
#include "util/stats.hpp"

namespace nvff::reliability {

/// Classified outcome of one design's trial, by rising severity.
enum class TrialOutcome {
  Pass,         ///< all bits restored with healthy margin
  Metastable,   ///< levels correct but differential below the margin floor
  BitError,     ///< converged simulation, wrong restored level
  WriteFailure, ///< the store did not commit the intended MTJ states
  SolverFailure,///< recovery ladder exhausted (see solveStatus)
  Unclassified, ///< unexpected exception — always a bug, gates CI
};
const char* outcome_name(TrialOutcome outcome);

/// The two Table II designs a trial compares.
enum class Design { StandardPair, Proposed2Bit };
const char* design_name(Design design);

struct CampaignConfig {
  int trials = 256;
  std::uint64_t seed = 1;
  int threads = 1;

  /// Multiplier on the MTJ one-sigma process spreads (yield-vs-sigma sweeps
  /// scan this; 1.0 reproduces the paper's Table I variation).
  double sigmaScale = 1.0;
  /// Per-transistor local Vth mismatch, one sigma [V].
  double sigmaVthMismatch = 0.015;
  /// Global (per-trial) corner jitter on both devices' Vth, one sigma [V].
  double cornerJitterVth = 0.02;
  /// Probability that a trial carries one injected MTJ defect.
  double defectRate = 0.0;

  /// Differential |out - outb| / VDD below which a capture counts as
  /// metastable (real silicon resolves the tie by noise — a coin flip).
  double marginThreshold = 0.4;

  double timestep = 4e-12;             ///< transient dt [s]
  cell::PowerCycleTiming timing{};     ///< cycle shape (tests shrink it)
  spice::RecoveryOptions recovery{};   ///< solver recovery ladder + budget
};

/// One design's classified result inside a trial.
struct DesignTrialResult {
  TrialOutcome outcome = TrialOutcome::Unclassified;
  int bitErrors = 0;   ///< unreliable bits (wrong level or metastable), 0..2
  double margin = 0.0; ///< min differential at capture / VDD; NaN on failure
  spice::SolveStatus solveStatus = spice::SolveStatus::Converged;
  int retriesUsed = 0;   ///< recovery escalations across the cycle(s)
  int subdivisions = 0;  ///< rescued transient steps
  long iterations = 0;   ///< Newton iterations across the cycle(s)
  std::string note;      ///< diagnostic (solver message / exception text)
};

struct TrialResult {
  int trialId = 0;
  bool d0 = false;
  bool d1 = false;
  bool defectInjected = false;
  int defectVictim = 0; ///< pillar 0..3 (bit0 out/outb, bit1 out/outb)
  int defectKind = 0;   ///< mtj::MtjDefect enumerator value
  DesignTrialResult standard;
  DesignTrialResult proposed;
};

/// Aggregates of one design over a finished campaign.
struct DesignSummary {
  long trials = 0;
  long counts[6] = {0, 0, 0, 0, 0, 0}; ///< indexed by TrialOutcome
  long bitsSimulated = 0; ///< bits with a converged simulation
  long bitErrors = 0;
  SampleSet margins;      ///< converged trials only

  /// Bit-error rate over converged trials (metastable bits count as errors).
  double ber() const;
  /// Fraction of ALL trials that fully passed (solver failures count
  /// against yield: a cell we cannot even simulate is not a yielding cell).
  double yield() const;
};

struct CampaignResult {
  CampaignConfig config;
  std::vector<TrialResult> trials; ///< slot t = trial t, always full size

  DesignSummary summarize(Design design) const;
};

/// Runs one trial (both designs). Never throws. When `cancel` is given it
/// is threaded into the solver's RecoveryOptions, so a campaign watchdog
/// can reel in a stuck trial (its designs then report SolveStatus::Cancelled).
TrialResult run_trial(const CampaignConfig& config, int trialId,
                      const CancelToken* cancel = nullptr);

/// Progress hook: (completedTrials, totalTrials). Called under a lock, from
/// worker threads, in completion order — do not rely on ordering for
/// anything deterministic.
using ProgressFn = std::function<void(int, int)>;

/// A supervised campaign: the (possibly partial) results plus the runtime
/// supervisor's account of how the run ended (completed / interrupted /
/// deadline), its timeout count, and the resumability exit code.
struct CampaignRun {
  CampaignResult result;
  runtime::SupervisorOutcome supervisor;
};

/// Runs the campaign on the shared runtime supervisor: work-stealing pool
/// of config.threads workers, durable CRC-checked checkpoints (two
/// generations, corrupt files quarantined), per-trial watchdog and campaign
/// deadline via `run`, SIGINT/SIGTERM drain when `run.installSignalHandlers`
/// is set. Throws std::runtime_error only on fatal conditions (checkpoint
/// fingerprint mismatch, final-commit I/O failure, --resume with nothing to
/// resume) — never on solver trouble.
CampaignRun run_campaign_supervised(const CampaignConfig& config,
                                    const runtime::RunOptions& run,
                                    const ProgressFn& progress = nullptr);

/// Legacy entry point: runs to completion with no watchdogs or signal
/// handling. When `checkpointPath` is non-empty, campaign state is written
/// there every `checkpointEvery` completed trials (and once at the end); if
/// the file already exists it is loaded first and finished trials are not
/// re-run. Semantics otherwise match run_campaign_supervised.
CampaignResult run_campaign(const CampaignConfig& config,
                            const std::string& checkpointPath = "",
                            int checkpointEvery = 16,
                            const ProgressFn& progress = nullptr);

/// Deterministic human-readable report (BER/yield per design, outcome
/// breakdown, read-margin distribution). Contains no wall-clock or thread
/// information by design: identical campaigns must render identically.
std::string render_report(const CampaignResult& result);

/// One row of a yield-vs-sigma sweep.
struct SigmaSweepRow {
  double sigmaScale = 0.0;
  double yieldStandard = 0.0;
  double yieldProposed = 0.0;
  double berStandard = 0.0;
  double berProposed = 0.0;
  double p5MarginStandard = 0.0;
  double p5MarginProposed = 0.0;
};

/// Runs `base` once per scale (same seed: common random numbers, so rows
/// differ only by the sigma scale, not by sampling noise).
std::vector<SigmaSweepRow> sigma_sweep(CampaignConfig base,
                                       const std::vector<double>& scales);
std::string render_sigma_sweep(const std::vector<SigmaSweepRow>& rows);

} // namespace nvff::reliability
