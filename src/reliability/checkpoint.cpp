#include "reliability/checkpoint.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "runtime/durable_file.hpp"
#include "runtime/supervisor.hpp"
#include "spice/analysis.hpp"
#include "util/json.hpp"

namespace nvff::reliability {

namespace {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

using json::append_escaped;
using json::num;

/// Outcome names double as the serialization tokens.
TrialOutcome outcome_from_name(const std::string& name) {
  for (int i = 0; i <= static_cast<int>(TrialOutcome::Unclassified); ++i)
    if (name == outcome_name(static_cast<TrialOutcome>(i)))
      return static_cast<TrialOutcome>(i);
  throw std::runtime_error("checkpoint: unknown outcome '" + name + "'");
}

spice::SolveStatus status_from_name(const std::string& name) {
  for (int i = 0; i <= static_cast<int>(spice::SolveStatus::Cancelled); ++i)
    if (name == spice::solve_status_name(static_cast<spice::SolveStatus>(i)))
      return static_cast<spice::SolveStatus>(i);
  throw std::runtime_error("checkpoint: unknown solve status '" + name + "'");
}

/// Campaign-defining fields only (threads / checkpoint cadence excluded:
/// they must not invalidate a resume). Also the fingerprint compared by
/// validate_checkpoint, so every field that changes sampling or
/// classification belongs here.
std::string config_json(const CampaignConfig& c) {
  char seedBuf[24];
  std::snprintf(seedBuf, sizeof(seedBuf), "%llu",
                static_cast<unsigned long long>(c.seed));
  const cell::PowerCycleTiming& t = c.timing;
  const double timing[] = {t.write.start, t.write.duration, t.write.tail,
                           t.write.ramp,  t.offRamp,        t.offDuration,
                           t.onRamp,      t.wakeSettle,     t.read.start,
                           t.read.precharge, t.read.evaluate, t.read.gap,
                           t.read.ramp};
  std::string out = "{";
  out += "\"trials\":" + num(c.trials);
  out += ",\"seed\":\"" + std::string(seedBuf) + "\"";
  out += ",\"sigmaScale\":" + num(c.sigmaScale);
  out += ",\"sigmaVthMismatch\":" + num(c.sigmaVthMismatch);
  out += ",\"cornerJitterVth\":" + num(c.cornerJitterVth);
  out += ",\"defectRate\":" + num(c.defectRate);
  out += ",\"marginThreshold\":" + num(c.marginThreshold);
  out += ",\"timestep\":" + num(c.timestep);
  out += ",\"timing\":[";
  for (std::size_t i = 0; i < sizeof(timing) / sizeof(timing[0]); ++i) {
    if (i) out += ',';
    out += num(timing[i]);
  }
  out += "]";
  out += ",\"recovery\":{\"gminStepping\":";
  out += c.recovery.gminStepping ? "true" : "false";
  out += ",\"timestepBackoff\":";
  out += c.recovery.timestepBackoff ? "true" : "false";
  out += ",\"sourceStepping\":";
  out += c.recovery.sourceStepping ? "true" : "false";
  out += ",\"retryBudget\":" + num(c.recovery.retryBudget);
  out += ",\"deadlineSeconds\":" + num(c.recovery.deadlineSeconds);
  out += "}}";
  return out;
}

void design_json(std::string& out, const DesignTrialResult& r) {
  out += "{\"outcome\":";
  append_escaped(out, outcome_name(r.outcome));
  out += ",\"bitErrors\":" + num(r.bitErrors);
  out += ",\"margin\":" + num(r.margin);
  out += ",\"status\":";
  append_escaped(out, spice::solve_status_name(r.solveStatus));
  out += ",\"retries\":" + num(r.retriesUsed);
  out += ",\"subdivisions\":" + num(r.subdivisions);
  out += ",\"iterations\":" + num(static_cast<double>(r.iterations));
  out += ",\"note\":";
  append_escaped(out, r.note);
  out += "}";
}

using Json = json::Value;

DesignTrialResult design_from_json(const Json& j) {
  DesignTrialResult r;
  r.outcome = outcome_from_name(j.at("outcome").as_str());
  r.bitErrors = static_cast<int>(j.at("bitErrors").as_num());
  r.margin = j.at("margin").as_num();
  r.solveStatus = status_from_name(j.at("status").as_str());
  r.retriesUsed = static_cast<int>(j.at("retries").as_num());
  r.subdivisions = static_cast<int>(j.at("subdivisions").as_num());
  r.iterations = static_cast<long>(j.at("iterations").as_num());
  r.note = j.at("note").as_str();
  return r;
}

CampaignConfig config_from_json(const Json& j) {
  CampaignConfig c;
  c.trials = static_cast<int>(j.at("trials").as_num());
  errno = 0;
  c.seed = std::strtoull(j.at("seed").as_str().c_str(), nullptr, 10);
  if (errno == ERANGE) throw std::runtime_error("checkpoint: bad seed");
  c.sigmaScale = j.at("sigmaScale").as_num();
  c.sigmaVthMismatch = j.at("sigmaVthMismatch").as_num();
  c.cornerJitterVth = j.at("cornerJitterVth").as_num();
  c.defectRate = j.at("defectRate").as_num();
  c.marginThreshold = j.at("marginThreshold").as_num();
  c.timestep = j.at("timestep").as_num();
  const Json& t = j.at("timing");
  if (t.kind != Json::Kind::Arr || t.items.size() != 13)
    throw std::runtime_error("checkpoint: bad timing block");
  cell::PowerCycleTiming& pt = c.timing;
  double* slots[] = {&pt.write.start, &pt.write.duration, &pt.write.tail,
                     &pt.write.ramp,  &pt.offRamp,        &pt.offDuration,
                     &pt.onRamp,      &pt.wakeSettle,     &pt.read.start,
                     &pt.read.precharge, &pt.read.evaluate, &pt.read.gap,
                     &pt.read.ramp};
  for (std::size_t i = 0; i < 13; ++i) *slots[i] = t.items[i].as_num();
  const Json& rec = j.at("recovery");
  c.recovery.gminStepping = rec.at("gminStepping").as_bool();
  c.recovery.timestepBackoff = rec.at("timestepBackoff").as_bool();
  c.recovery.sourceStepping = rec.at("sourceStepping").as_bool();
  c.recovery.retryBudget = static_cast<int>(rec.at("retryBudget").as_num());
  c.recovery.deadlineSeconds = rec.at("deadlineSeconds").as_num();
  return c;
}

} // namespace

std::string serialize_checkpoint(const CampaignConfig& config,
                                 const std::vector<TrialResult>& trials) {
  std::string out = "{\"schema\":1,\"config\":" + config_json(config);
  out += ",\"trials\":[";
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const TrialResult& t = trials[i];
    if (i) out += ',';
    out += "\n{\"id\":" + num(t.trialId);
    out += ",\"d0\":";
    out += t.d0 ? "true" : "false";
    out += ",\"d1\":";
    out += t.d1 ? "true" : "false";
    out += ",\"defect\":";
    out += t.defectInjected ? "true" : "false";
    out += ",\"victim\":" + num(t.defectVictim);
    out += ",\"kind\":" + num(t.defectKind);
    out += ",\"standard\":";
    design_json(out, t.standard);
    out += ",\"proposed\":";
    design_json(out, t.proposed);
    out += "}";
  }
  out += "]}\n";
  return out;
}

CheckpointData parse_checkpoint(const std::string& text) {
  const Json doc = json::parse(text, "checkpoint");
  if (doc.kind != Json::Kind::Obj)
    throw std::runtime_error("checkpoint: document is not an object");
  const double schema = doc.at("schema").as_num();
  if (schema != 1.0)
    throw std::runtime_error("checkpoint: unsupported schema version");
  CheckpointData data;
  data.config = config_from_json(doc.at("config"));
  const Json& trials = doc.at("trials");
  if (trials.kind != Json::Kind::Arr)
    throw std::runtime_error("checkpoint: trials is not an array");
  for (const Json& j : trials.items) {
    TrialResult t;
    t.trialId = static_cast<int>(j.at("id").as_num());
    t.d0 = j.at("d0").as_bool();
    t.d1 = j.at("d1").as_bool();
    t.defectInjected = j.at("defect").as_bool();
    t.defectVictim = static_cast<int>(j.at("victim").as_num());
    t.defectKind = static_cast<int>(j.at("kind").as_num());
    t.standard = design_from_json(j.at("standard"));
    t.proposed = design_from_json(j.at("proposed"));
    data.trials.push_back(std::move(t));
  }
  return data;
}

void write_checkpoint_file(const std::string& path, const CampaignConfig& config,
                           const std::vector<TrialResult>& trials) {
  // Durable commit: CRC envelope, fsync before and after the rename, and a
  // rotated previous generation the loader can fall back to.
  runtime::commit_durable(path, serialize_checkpoint(config, trials));
}

bool load_checkpoint_file(const std::string& path, CheckpointData& out) {
  const runtime::DurableLoad loaded = runtime::load_durable(path);
  if (!loaded.found) return false;
  out = parse_checkpoint(loaded.payload);
  return true;
}

void validate_checkpoint(const CampaignConfig& run, const CampaignConfig& loaded) {
  // %.17g round-trips exactly, so comparing re-rendered fingerprints is a
  // field-by-field equality check without a pile of epsilon comparisons.
  if (config_json(run) != config_json(loaded)) {
    // Attach both fingerprints so the CLI can print a field-by-field
    // stored-vs-requested diff (runtime/config_diff.hpp) instead of this
    // generic refusal alone.
    throw runtime::ConfigMismatch(
        "checkpoint was written by a different campaign configuration; "
        "refusing to mix its trials into this run (delete the file or rerun "
        "with the original parameters)",
        config_json(loaded), config_json(run));
  }
}

} // namespace nvff::reliability
