// Campaign checkpointing: JSON snapshot of finished trials so a long
// Monte-Carlo run survives interruption and resumes exactly where it
// stopped. The format is self-describing JSON written and parsed by a
// minimal built-in reader (the toolchain has no JSON dependency, and the
// checkpoint only needs objects/arrays/strings/numbers/bools/null).
//
// Resume safety: the file embeds the campaign configuration fingerprint;
// loading a checkpoint written by a different configuration is an error,
// because mixing trials from two different sampling setups would silently
// corrupt the statistics.
#pragma once

#include <string>
#include <vector>

#include "reliability/montecarlo.hpp"

namespace nvff::reliability {

struct CheckpointData {
  CampaignConfig config; ///< only the fingerprinted fields are restored
  std::vector<TrialResult> trials;
};

/// Renders the checkpoint JSON document.
std::string serialize_checkpoint(const CampaignConfig& config,
                                 const std::vector<TrialResult>& trials);

/// Parses a checkpoint document; throws std::runtime_error on malformed
/// input (truncated file, wrong schema version, type mismatches).
CheckpointData parse_checkpoint(const std::string& json);

/// Atomically replaces `path` (write temp + rename). Throws on I/O error.
void write_checkpoint_file(const std::string& path, const CampaignConfig& config,
                           const std::vector<TrialResult>& trials);

/// Returns false when the file does not exist; throws on unreadable or
/// malformed content.
bool load_checkpoint_file(const std::string& path, CheckpointData& out);

/// Throws std::runtime_error when `loaded` was produced by a campaign whose
/// statistics are incompatible with `run` (different seed, trial count,
/// sampling knobs or timing). Thread count is deliberately NOT part of the
/// fingerprint: resuming on a different machine size is the point.
void validate_checkpoint(const CampaignConfig& run, const CampaignConfig& loaded);

} // namespace nvff::reliability
