#include "bench_circuits/netlist.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/strings.hpp"

namespace nvff::bench {

const char* gate_type_name(GateType type) {
  switch (type) {
    case GateType::Input: return "INPUT";
    case GateType::Buf: return "BUF";
    case GateType::Not: return "NOT";
    case GateType::And: return "AND";
    case GateType::Nand: return "NAND";
    case GateType::Or: return "OR";
    case GateType::Nor: return "NOR";
    case GateType::Xor: return "XOR";
    case GateType::Xnor: return "XNOR";
    case GateType::Dff: return "DFF";
  }
  return "?";
}

bool parse_gate_type(const std::string& name, GateType& out) {
  const std::string lower = to_lower(name);
  if (lower == "buf" || lower == "buff") out = GateType::Buf;
  else if (lower == "not" || lower == "inv") out = GateType::Not;
  else if (lower == "and") out = GateType::And;
  else if (lower == "nand") out = GateType::Nand;
  else if (lower == "or") out = GateType::Or;
  else if (lower == "nor") out = GateType::Nor;
  else if (lower == "xor") out = GateType::Xor;
  else if (lower == "xnor") out = GateType::Xnor;
  else if (lower == "dff") out = GateType::Dff;
  else if (lower == "input") out = GateType::Input;
  else return false;
  return true;
}

Netlist::Netlist(std::string name) : name_(std::move(name)) {}

GateId Netlist::add_gate(GateType type, const std::string& gateName,
                         std::vector<GateId> fanin) {
  if (byName_.count(gateName) != 0) {
    throw std::runtime_error("Netlist: duplicate gate " + gateName);
  }
  const GateId id = static_cast<GateId>(gates_.size());
  Gate g;
  g.type = type;
  g.name = gateName;
  g.fanin = std::move(fanin);
  gates_.push_back(std::move(g));
  byName_.emplace(gateName, id);
  if (type == GateType::Input) inputs_.push_back(id);
  if (type == GateType::Dff) dffs_.push_back(id);
  finalized_ = false;
  return id;
}

void Netlist::set_fanin(GateId gate, std::vector<GateId> fanin) {
  gates_.at(static_cast<std::size_t>(gate)).fanin = std::move(fanin);
  finalized_ = false;
}

void Netlist::mark_output(GateId gate) {
  if (gate < 0 || static_cast<std::size_t>(gate) >= gates_.size()) {
    throw std::runtime_error("Netlist: output marks unknown gate");
  }
  outputs_.push_back(gate);
}

GateId Netlist::find(const std::string& name) const {
  auto it = byName_.find(name);
  return it == byName_.end() ? kNoGate : it->second;
}

std::size_t Netlist::num_logic_gates() const {
  return gates_.size() - inputs_.size() - dffs_.size();
}

void Netlist::finalize() {
  // Arity checks + fanout rebuild.
  for (auto& g : gates_) g.fanout.clear();
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    Gate& g = gates_[i];
    const auto arity = g.fanin.size();
    switch (g.type) {
      case GateType::Input:
        if (arity != 0) throw std::runtime_error("INPUT with fanin: " + g.name);
        break;
      case GateType::Buf:
      case GateType::Not:
      case GateType::Dff:
        if (arity != 1) {
          throw std::runtime_error(std::string(gate_type_name(g.type)) +
                                   " needs exactly one fanin: " + g.name);
        }
        break;
      default:
        if (arity < 2 || arity > kMaxFanin) {
          throw std::runtime_error(std::string(gate_type_name(g.type)) +
                                   " has bad fanin count: " + g.name);
        }
    }
    for (GateId f : g.fanin) {
      if (f < 0 || static_cast<std::size_t>(f) >= gates_.size()) {
        throw std::runtime_error("dangling fanin in " + g.name);
      }
      gates_[static_cast<std::size_t>(f)].fanout.push_back(static_cast<GateId>(i));
    }
  }

  // Kahn topological sort over combinational edges only: DFFs and inputs are
  // sources; an edge into a DFF's D pin is ignored for ordering (it is a
  // sequential boundary).
  topo_.clear();
  std::vector<int> pending(gates_.size(), 0);
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    if (g.type == GateType::Input || g.type == GateType::Dff) continue;
    pending[i] = static_cast<int>(g.fanin.size());
  }
  std::vector<GateId> queue;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    if (pending[i] == 0) queue.push_back(static_cast<GateId>(i));
  }
  std::size_t head = 0;
  while (head < queue.size()) {
    const GateId id = queue[head++];
    topo_.push_back(id);
    for (GateId out : gates_[static_cast<std::size_t>(id)].fanout) {
      const Gate& og = gates_[static_cast<std::size_t>(out)];
      if (og.type == GateType::Dff || og.type == GateType::Input) continue;
      if (--pending[static_cast<std::size_t>(out)] == 0) queue.push_back(out);
    }
  }
  if (topo_.size() != gates_.size()) {
    const auto cycle = find_combinational_cycle(*this);
    throw std::runtime_error("Netlist '" + name_ + "': combinational cycle " +
                             cycle_path_string(*this, cycle));
  }
  finalized_ = true;
}

std::vector<GateId> find_combinational_cycle(const Netlist& nl) {
  // Iterative DFS over combinational fanin edges. color: 0 = unvisited,
  // 1 = on the current DFS path, 2 = done.
  const std::size_t n = nl.size();
  std::vector<char> color(n, 0);
  std::vector<GateId> path;

  auto combinational = [&](GateId id) {
    const GateType t = nl.gate(id).type;
    return t != GateType::Input && t != GateType::Dff;
  };

  for (std::size_t start = 0; start < n; ++start) {
    if (color[start] != 0 || !combinational(static_cast<GateId>(start))) continue;
    // Stack of (gate, next fanin index to explore).
    std::vector<std::pair<GateId, std::size_t>> stack;
    stack.emplace_back(static_cast<GateId>(start), 0);
    color[start] = 1;
    path.push_back(static_cast<GateId>(start));
    while (!stack.empty()) {
      auto& [id, next] = stack.back();
      const auto& fanin = nl.gate(id).fanin;
      bool descended = false;
      while (next < fanin.size()) {
        const GateId f = fanin[next++];
        if (!nl.valid_gate(f) || !combinational(f)) continue;
        if (color[static_cast<std::size_t>(f)] == 1) {
          // Back edge: the cycle is f .. id (in path order), plus f again.
          auto it = std::find(path.begin(), path.end(), f);
          std::vector<GateId> cycle(it, path.end());
          std::reverse(cycle.begin(), cycle.end()); // driver -> sink order
          cycle.push_back(cycle.front());
          return cycle;
        }
        if (color[static_cast<std::size_t>(f)] == 0) {
          color[static_cast<std::size_t>(f)] = 1;
          path.push_back(f);
          stack.emplace_back(f, 0);
          descended = true;
          break;
        }
      }
      if (!descended) {
        color[static_cast<std::size_t>(id)] = 2;
        path.pop_back();
        stack.pop_back();
      }
    }
  }
  return {};
}

std::string cycle_path_string(const Netlist& nl, const std::vector<GateId>& cycle) {
  if (cycle.empty()) return "(none)";
  std::string out;
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    if (i != 0) out += " -> ";
    out += nl.gate(cycle[i]).name;
  }
  return out;
}

} // namespace nvff::bench
