#include "bench_circuits/bench_io.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace nvff::bench {
namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error(format("bench parse error at line %d: %s", line,
                                  what.c_str()));
}

struct PendingGate {
  GateType type;
  std::string name;
  std::vector<std::string> fanins;
  int line;
};

struct Collected {
  std::vector<PendingGate> defs;
  std::vector<std::pair<std::string, int>> outputMarks;
};

/// First pass shared by the strict and lenient parsers: collects the
/// declarations (signals may be referenced before they are defined, and DFFs
/// form cycles). Strict mode throws on the first malformed line; lenient
/// mode records the problem in `issues` and keeps scanning.
Collected collect_bench(std::istream& in, std::vector<BenchIssue>* issues) {
  Collected out;
  std::string line;
  int lineNo = 0;

  auto report = [&](BenchIssue::Kind kind, const std::string& what) {
    if (issues == nullptr) fail(lineNo, what);
    issues->push_back({kind, lineNo, "", what});
  };

  while (std::getline(in, line)) {
    ++lineNo;
    std::string_view sv = trim(line);
    if (sv.empty() || sv.front() == '#') continue;
    const std::string text(sv);

    bool callOk = true;
    auto parseCall = [&](const std::string& s) -> std::pair<std::string, std::string> {
      const auto open = s.find('(');
      const auto close = s.rfind(')');
      if (open == std::string::npos || close == std::string::npos || close < open) {
        callOk = false;
        report(BenchIssue::Kind::Syntax, "expected FUNC(args): " + s);
        return {};
      }
      return {std::string(trim(s.substr(0, open))),
              std::string(trim(s.substr(open + 1, close - open - 1)))};
    };

    const auto eq = text.find('=');
    if (eq == std::string::npos) {
      auto [func, arg] = parseCall(text);
      if (!callOk) continue;
      const std::string funcLower = to_lower(func);
      if (funcLower == "input") {
        out.defs.push_back({GateType::Input, arg, {}, lineNo});
      } else if (funcLower == "output") {
        out.outputMarks.emplace_back(arg, lineNo);
      } else {
        report(BenchIssue::Kind::Syntax, "unknown directive: " + func);
      }
      continue;
    }

    const std::string lhs(trim(text.substr(0, eq)));
    if (lhs.empty()) {
      report(BenchIssue::Kind::Syntax, "missing signal name");
      continue;
    }
    auto [func, args] = parseCall(text.substr(eq + 1));
    if (!callOk) continue;
    GateType type;
    if (!parse_gate_type(func, type) || type == GateType::Input) {
      report(BenchIssue::Kind::Syntax, "unknown gate type: " + func);
      continue;
    }
    PendingGate pg{type, lhs, {}, lineNo};
    for (const auto& a : split(args, ", \t")) pg.fanins.push_back(a);
    out.defs.push_back(std::move(pg));
  }
  return out;
}

} // namespace

Netlist parse_bench(std::istream& in, const std::string& circuitName) {
  Netlist nl(circuitName);
  const Collected c = collect_bench(in, nullptr);

  // Create all gates, then wire fanins by name.
  for (const auto& d : c.defs) {
    nl.add_gate(d.type, d.name);
  }
  for (const auto& d : c.defs) {
    if (d.fanins.empty()) continue;
    std::vector<GateId> fanin;
    for (const auto& f : d.fanins) {
      const GateId id = nl.find(f);
      if (id == kNoGate) fail(d.line, "undefined signal: " + f);
      fanin.push_back(id);
    }
    nl.set_fanin(nl.find(d.name), std::move(fanin));
  }
  for (const auto& [sig, markLine] : c.outputMarks) {
    const GateId id = nl.find(sig);
    if (id == kNoGate) fail(markLine, "OUTPUT references undefined signal: " + sig);
    nl.mark_output(id);
  }
  nl.finalize();
  return nl;
}

Netlist parse_bench_lenient(std::istream& in, const std::string& circuitName,
                            std::vector<BenchIssue>& issues) {
  Netlist nl(circuitName);
  const Collected c = collect_bench(in, &issues);

  // First definition of a signal wins; later ones are multi-driver issues.
  std::vector<const PendingGate*> kept;
  for (const auto& d : c.defs) {
    if (nl.find(d.name) != kNoGate) {
      issues.push_back({BenchIssue::Kind::DuplicateDriver, d.line, d.name,
                        "signal '" + d.name + "' has more than one driver"});
      continue;
    }
    nl.add_gate(d.type, d.name);
    kept.push_back(&d);
  }
  for (const auto* d : kept) {
    if (d->fanins.empty()) continue;
    std::vector<GateId> fanin;
    for (const auto& f : d->fanins) {
      const GateId id = nl.find(f);
      if (id == kNoGate) {
        issues.push_back({BenchIssue::Kind::UndefinedSignal, d->line, f,
                          "'" + d->name + "' reads undefined signal '" + f + "'"});
        continue;
      }
      fanin.push_back(id);
    }
    nl.set_fanin(nl.find(d->name), std::move(fanin));
  }
  for (const auto& [sig, markLine] : c.outputMarks) {
    const GateId id = nl.find(sig);
    if (id == kNoGate) {
      issues.push_back({BenchIssue::Kind::UndefinedSignal, markLine, sig,
                        "OUTPUT references undefined signal '" + sig + "'"});
      continue;
    }
    nl.mark_output(id);
  }
  return nl;
}

Netlist parse_bench_string(const std::string& text, const std::string& circuitName) {
  std::istringstream in(text);
  return parse_bench(in, circuitName);
}

Netlist load_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open bench file: " + path);
  // Circuit name = file stem.
  auto slash = path.find_last_of('/');
  std::string stem = (slash == std::string::npos) ? path : path.substr(slash + 1);
  const auto dot = stem.find_last_of('.');
  if (dot != std::string::npos) stem = stem.substr(0, dot);
  return parse_bench(in, stem);
}

std::string to_bench(const Netlist& nl) {
  std::ostringstream out;
  out << "# " << nl.name() << " — " << nl.num_inputs() << " inputs, "
      << nl.num_outputs() << " outputs, " << nl.num_flip_flops() << " DFFs, "
      << nl.num_logic_gates() << " gates\n";
  for (GateId id : nl.inputs()) out << "INPUT(" << nl.gate(id).name << ")\n";
  for (GateId id : nl.outputs()) out << "OUTPUT(" << nl.gate(id).name << ")\n";
  for (std::size_t i = 0; i < nl.size(); ++i) {
    const Gate& g = nl.gate(static_cast<GateId>(i));
    if (g.type == GateType::Input) continue;
    out << g.name << " = " << gate_type_name(g.type) << "(";
    for (std::size_t f = 0; f < g.fanin.size(); ++f) {
      if (f != 0) out << ", ";
      out << nl.gate(g.fanin[f]).name;
    }
    out << ")\n";
  }
  return out.str();
}

void save_bench_file(const Netlist& netlist, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write bench file: " + path);
  out << to_bench(netlist);
}

} // namespace nvff::bench
