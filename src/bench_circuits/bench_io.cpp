#include "bench_circuits/bench_io.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace nvff::bench {
namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error(format("bench parse error at line %d: %s", line,
                                  what.c_str()));
}

} // namespace

Netlist parse_bench(std::istream& in, const std::string& circuitName) {
  Netlist nl(circuitName);

  // Two-phase: collect declarations first (signals may be referenced before
  // they are defined, and DFFs form cycles), then resolve fanins.
  struct PendingGate {
    GateType type;
    std::string name;
    std::vector<std::string> fanins;
    int line;
  };
  std::vector<PendingGate> defs;
  std::vector<std::pair<std::string, int>> outputMarks;

  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    std::string_view sv = trim(line);
    if (sv.empty() || sv.front() == '#') continue;
    const std::string text(sv);

    auto parseCall = [&](const std::string& s) -> std::pair<std::string, std::string> {
      const auto open = s.find('(');
      const auto close = s.rfind(')');
      if (open == std::string::npos || close == std::string::npos || close < open) {
        fail(lineNo, "expected FUNC(args): " + s);
      }
      return {std::string(trim(s.substr(0, open))),
              std::string(trim(s.substr(open + 1, close - open - 1)))};
    };

    const auto eq = text.find('=');
    if (eq == std::string::npos) {
      auto [func, arg] = parseCall(text);
      const std::string funcLower = to_lower(func);
      if (funcLower == "input") {
        defs.push_back({GateType::Input, arg, {}, lineNo});
      } else if (funcLower == "output") {
        outputMarks.emplace_back(arg, lineNo);
      } else {
        fail(lineNo, "unknown directive: " + func);
      }
      continue;
    }

    const std::string lhs(trim(text.substr(0, eq)));
    if (lhs.empty()) fail(lineNo, "missing signal name");
    auto [func, args] = parseCall(text.substr(eq + 1));
    GateType type;
    if (!parse_gate_type(func, type) || type == GateType::Input) {
      fail(lineNo, "unknown gate type: " + func);
    }
    PendingGate pg{type, lhs, {}, lineNo};
    for (const auto& a : split(args, ", \t")) pg.fanins.push_back(a);
    defs.push_back(std::move(pg));
  }

  // Create all gates, then wire fanins by name.
  for (const auto& d : defs) {
    nl.add_gate(d.type, d.name);
  }
  for (const auto& d : defs) {
    if (d.fanins.empty()) continue;
    std::vector<GateId> fanin;
    for (const auto& f : d.fanins) {
      const GateId id = nl.find(f);
      if (id == kNoGate) fail(d.line, "undefined signal: " + f);
      fanin.push_back(id);
    }
    nl.set_fanin(nl.find(d.name), std::move(fanin));
  }
  for (const auto& [sig, markLine] : outputMarks) {
    const GateId id = nl.find(sig);
    if (id == kNoGate) fail(markLine, "OUTPUT references undefined signal: " + sig);
    nl.mark_output(id);
  }
  nl.finalize();
  return nl;
}

Netlist parse_bench_string(const std::string& text, const std::string& circuitName) {
  std::istringstream in(text);
  return parse_bench(in, circuitName);
}

Netlist load_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open bench file: " + path);
  // Circuit name = file stem.
  auto slash = path.find_last_of('/');
  std::string stem = (slash == std::string::npos) ? path : path.substr(slash + 1);
  const auto dot = stem.find_last_of('.');
  if (dot != std::string::npos) stem = stem.substr(0, dot);
  return parse_bench(in, stem);
}

std::string to_bench(const Netlist& nl) {
  std::ostringstream out;
  out << "# " << nl.name() << " — " << nl.num_inputs() << " inputs, "
      << nl.num_outputs() << " outputs, " << nl.num_flip_flops() << " DFFs, "
      << nl.num_logic_gates() << " gates\n";
  for (GateId id : nl.inputs()) out << "INPUT(" << nl.gate(id).name << ")\n";
  for (GateId id : nl.outputs()) out << "OUTPUT(" << nl.gate(id).name << ")\n";
  for (std::size_t i = 0; i < nl.size(); ++i) {
    const Gate& g = nl.gate(static_cast<GateId>(i));
    if (g.type == GateType::Input) continue;
    out << g.name << " = " << gate_type_name(g.type) << "(";
    for (std::size_t f = 0; f < g.fanin.size(); ++f) {
      if (f != 0) out << ", ";
      out << nl.gate(g.fanin[f]).name;
    }
    out << ")\n";
  }
  return out.str();
}

void save_bench_file(const Netlist& netlist, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write bench file: " + path);
  out << to_bench(netlist);
}

} // namespace nvff::bench
