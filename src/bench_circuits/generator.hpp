// Synthetic benchmark-circuit generator.
//
// The paper evaluates on ISCAS'89 (s344..s35932), ITC'99 (b14..b19) and the
// or1200 core. Those RTL sources are not redistributable here, so we
// generate structurally realistic stand-ins that pin the *published*
// flip-flop counts exactly (Table III column 2) and approximate the known
// logic sizes. What matters for the system-level experiment is the spatial
// statistics of flip-flops after placement, which are driven by netlist
// locality; the generator models the two mechanisms that cluster FFs in
// real designs:
//
//  * registers — FFs come in multi-bit banks (datapath words) whose bits
//    share fan-in logic, so the placer pulls them together;
//  * clusters — logic is modular; most connectivity is intra-module.
//
// Each benchmark spec carries a register width and a locality knob; the
// published 2-bit-pair counts are recorded for paper-vs-ours comparison in
// EXPERIMENTS.md. Generation is fully deterministic given the spec's seed.
#pragma once

#include <vector>

#include "bench_circuits/netlist.hpp"
#include "util/rng.hpp"

namespace nvff::bench {

struct BenchmarkSpec {
  std::string name;
  int flipFlops = 0;  ///< exact (paper Table III)
  int logicGates = 0; ///< approximate real circuit size
  int inputs = 0;
  int outputs = 0;
  int registerWidth = 8;     ///< typical FF bank width (locality knob)
  double locality = 0.85;    ///< probability a fanin is intra-cluster
  /// Placement row utilization for this benchmark. Real (timing-driven)
  /// placements spread FF-heavy designs; lower utilization reproduces the
  /// lower pairing fractions the paper observed on them.
  double utilization = 0.70;
  std::uint64_t seed = 1;

  // Published Table III reference values for EXPERIMENTS.md comparison.
  int paperPairs = 0;           ///< "Number of 2-bit NV flip-flops"
  double paperAreaImpr = 0.0;   ///< [%]
  double paperEnergyImpr = 0.0; ///< [%]
};

/// The paper's 13 benchmarks in Table III order.
const std::vector<BenchmarkSpec>& paper_benchmarks();

/// Finds a spec by name; throws if unknown.
const BenchmarkSpec& find_benchmark(const std::string& name);

/// Deterministically generates the circuit for a spec.
Netlist generate_benchmark(const BenchmarkSpec& spec);

/// Cluster labels per gate from the most recent generation. Index = GateId.
/// (Exposed so tests can verify locality; placement does not use it.)
struct GeneratedCircuit {
  Netlist netlist;
  std::vector<int> clusterOf; ///< per gate
  int numClusters = 0;
};
GeneratedCircuit generate_benchmark_detailed(const BenchmarkSpec& spec);

} // namespace nvff::bench
