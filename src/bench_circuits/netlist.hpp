// Gate-level netlist representation of the benchmark circuits (ISCAS'89 /
// ITC'99 style: primary IOs, combinational gates, D flip-flops).
//
// Each gate drives exactly one signal named after the gate; primary outputs
// are markers referencing driver gates, as in the .bench format.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace nvff::bench {

enum class GateType {
  Input, ///< primary input
  Buf,
  Not,
  And,
  Nand,
  Or,
  Nor,
  Xor,
  Xnor,
  Dff, ///< D flip-flop (single fanin = D; output = Q)
};

const char* gate_type_name(GateType type);
/// Parses "NAND", "dff", ... Returns false on unknown names.
bool parse_gate_type(const std::string& name, GateType& out);

/// Maximum supported fanin of a single gate.
inline constexpr std::size_t kMaxFanin = 16;

using GateId = std::int32_t;
inline constexpr GateId kNoGate = -1;

struct Gate {
  GateType type = GateType::Buf;
  std::string name;
  std::vector<GateId> fanin;
  std::vector<GateId> fanout; ///< derived; rebuilt by finalize()
};

/// A named gate-level circuit.
class Netlist {
public:
  explicit Netlist(std::string name = "top");

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Adds a gate; fanins may reference gates added later only via
  /// `set_fanin` (two-phase construction for cyclic FF paths).
  GateId add_gate(GateType type, const std::string& name,
                  std::vector<GateId> fanin = {});

  /// Re-targets the fanin list of an existing gate.
  void set_fanin(GateId gate, std::vector<GateId> fanin);

  /// Marks a gate's signal as a primary output.
  void mark_output(GateId gate);

  /// Validates the structure and rebuilds fanout lists. Throws
  /// std::runtime_error on dangling references, fanin arity violations, or
  /// combinational cycles (cycles through DFFs are fine).
  void finalize();

  // --- queries ---------------------------------------------------------------
  std::size_t size() const { return gates_.size(); }
  const Gate& gate(GateId id) const { return gates_[static_cast<std::size_t>(id)]; }
  GateId find(const std::string& name) const;

  const std::vector<GateId>& inputs() const { return inputs_; }
  const std::vector<GateId>& outputs() const { return outputs_; }
  const std::vector<GateId>& flip_flops() const { return dffs_; }

  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_outputs() const { return outputs_.size(); }
  std::size_t num_flip_flops() const { return dffs_.size(); }
  /// Combinational gate count (everything except inputs and DFFs).
  std::size_t num_logic_gates() const;

  /// Gates in topological order over the combinational edges (DFF outputs
  /// and primary inputs first). Valid after finalize().
  const std::vector<GateId>& topo_order() const { return topo_; }

  bool finalized() const { return finalized_; }

  /// True if `id` names a gate of this netlist.
  bool valid_gate(GateId id) const {
    return id >= 0 && static_cast<std::size_t>(id) < gates_.size();
  }

private:
  std::string name_;
  std::vector<Gate> gates_;
  std::unordered_map<std::string, GateId> byName_;
  std::vector<GateId> inputs_;
  std::vector<GateId> outputs_;
  std::vector<GateId> dffs_;
  std::vector<GateId> topo_;
  bool finalized_ = false;
};

/// Finds one cycle over the combinational fanin edges (edges into DFFs and
/// INPUTs are sequential boundaries and ignored). Works on unfinalized
/// netlists with dangling fanins (out-of-range ids are skipped). Returns the
/// gates of the cycle in driver -> sink order, with the first gate repeated
/// at the end ({a, b, c, a}); empty if the netlist is acyclic.
std::vector<GateId> find_combinational_cycle(const Netlist& netlist);

/// Renders a cycle from find_combinational_cycle as "a -> b -> c -> a".
std::string cycle_path_string(const Netlist& netlist, const std::vector<GateId>& cycle);

} // namespace nvff::bench
