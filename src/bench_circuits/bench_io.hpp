// ISCAS'89 ".bench" format reader/writer.
//
// Format:
//   # comment
//   INPUT(G0)
//   OUTPUT(G17)
//   G10 = NAND(G0, G1)
//   G7  = DFF(G10)
#pragma once

#include <iosfwd>
#include <string>

#include "bench_circuits/netlist.hpp"

namespace nvff::bench {

/// Parses .bench text. Throws std::runtime_error with a line number on
/// malformed input. The returned netlist is finalized.
Netlist parse_bench(std::istream& in, const std::string& circuitName = "top");
Netlist parse_bench_string(const std::string& text,
                           const std::string& circuitName = "top");
Netlist load_bench_file(const std::string& path);

/// Serializes to .bench text (round-trips with parse_bench).
std::string to_bench(const Netlist& netlist);
void save_bench_file(const Netlist& netlist, const std::string& path);

} // namespace nvff::bench
