// ISCAS'89 ".bench" format reader/writer.
//
// Format:
//   # comment
//   INPUT(G0)
//   OUTPUT(G17)
//   G10 = NAND(G0, G1)
//   G7  = DFF(G10)
#pragma once

#include <iosfwd>
#include <string>

#include "bench_circuits/netlist.hpp"

namespace nvff::bench {

/// Parses .bench text. Throws std::runtime_error with a line number on
/// malformed input. The returned netlist is finalized.
Netlist parse_bench(std::istream& in, const std::string& circuitName = "top");
Netlist parse_bench_string(const std::string& text,
                           const std::string& circuitName = "top");
Netlist load_bench_file(const std::string& path);

/// One problem found while scanning .bench text in lenient mode.
struct BenchIssue {
  enum class Kind {
    Syntax,          ///< malformed line / unknown directive or gate type
    DuplicateDriver, ///< a signal defined more than once (multi-driver)
    UndefinedSignal, ///< fanin or OUTPUT references an undefined signal
  };
  Kind kind = Kind::Syntax;
  int line = 0;         ///< 1-based source line
  std::string signal;   ///< offending signal name (may be empty for Syntax)
  std::string message;
};

/// Lenient parse for the ERC/lint subsystem: instead of throwing on the
/// first problem it records every issue and builds a best-effort netlist
/// (first definition of a multi-driven signal wins, unresolvable fanins are
/// dropped). The returned netlist is NOT finalized — structural checks run
/// on it via erc::lint_netlist.
Netlist parse_bench_lenient(std::istream& in, const std::string& circuitName,
                            std::vector<BenchIssue>& issues);

/// Serializes to .bench text (round-trips with parse_bench).
std::string to_bench(const Netlist& netlist);
void save_bench_file(const Netlist& netlist, const std::string& path);

} // namespace nvff::bench
