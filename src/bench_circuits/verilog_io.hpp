// Structural Verilog netlist writer.
//
// Emits the benchmark circuits as gate-level Verilog (primitive gates +
// a behavioural DFF macro), so the generated stand-ins can be fed to
// external synthesis/P&R tools or simulators for cross-checking.
#pragma once

#include <string>

#include "bench_circuits/netlist.hpp"

namespace nvff::bench {

struct VerilogOptions {
  std::string clockName = "clk";
  bool emitDffModule = true; ///< include a simple DFF module definition
};

/// Serializes the netlist as a synthesizable structural module.
std::string to_verilog(const Netlist& netlist, const VerilogOptions& options = {});

/// Writes to a file; throws std::runtime_error on IO failure.
void save_verilog_file(const Netlist& netlist, const std::string& path,
                       const VerilogOptions& options = {});

/// True if `name` is directly usable as a Verilog identifier.
bool is_valid_verilog_identifier(const std::string& name);

} // namespace nvff::bench
