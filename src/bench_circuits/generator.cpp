#include "bench_circuits/generator.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/strings.hpp"

namespace nvff::bench {

const std::vector<BenchmarkSpec>& paper_benchmarks() {
  // FF counts and paper reference columns are verbatim Table III; logic/IO
  // sizes are the published circuit statistics (rounded); registerWidth and
  // locality are generator knobs per the header comment.
  static const std::vector<BenchmarkSpec> specs = {
      //  name      FF    gates  in  out  regW loc  util  seed  pairs  area%  energy%
      {"s344",       15,    160,  9,  11,  6, 0.85, 0.30, 0x344,    5, 22.93, 12.54},
      {"s838",       32,    446, 34,   1,  8, 0.85, 0.45, 0x838,   12, 25.80, 14.11},
      {"s1423",      74,    657, 17,   5,  4, 0.80, 0.35, 0x1423,  23, 21.38, 11.70},
      {"s5378",     176,   2779, 35,  49,  8, 0.85, 0.48, 0x5378,  64, 25.02, 13.68},
      {"s13207",    627,   7951, 62, 152, 16, 0.88, 0.63, 0x13207, 259, 28.42, 15.54},
      {"s38584",   1424,  19253, 38, 304,  6, 0.80, 0.42, 0x38584, 473, 22.85, 12.50},
      {"s35932",   1728,  16065, 35, 320,  4, 0.75, 0.27, 0x35932, 472, 18.79, 10.28},
      {"b14",       215,   9767, 32,  54, 16, 0.88, 0.75, 0xb14,    90, 28.80, 15.75},
      {"b15",       416,   8367, 36,  70, 32, 0.90, 0.80, 0xb15,   189, 31.26, 17.10},
      {"b17",      1317,  30777, 37,  97, 16, 0.88, 0.70, 0xb17,   542, 28.31, 15.49},
      {"b18",      3020, 111241, 36,  23, 16, 0.88, 0.73, 0xb18,  1260, 28.70, 15.70},
      {"b19",      6042, 224624, 24,  30, 16, 0.88, 0.75, 0xb19,  2530, 28.81, 15.76},
      {"or1200",   2887,  30000, 385, 390, 32, 0.90, 0.74, 0x1200, 1269, 30.24, 16.54},
  };
  return specs;
}

const BenchmarkSpec& find_benchmark(const std::string& name) {
  for (const auto& spec : paper_benchmarks()) {
    if (spec.name == name) return spec;
  }
  throw std::invalid_argument("unknown benchmark: " + name);
}

namespace {

GateType random_gate_type(Rng& rng, std::size_t arity) {
  if (arity == 1) return rng.chance(0.5) ? GateType::Not : GateType::Buf;
  static constexpr GateType kTwoPlus[] = {GateType::And, GateType::Nand, GateType::Or,
                                          GateType::Nor, GateType::Xor, GateType::Xnor};
  // NAND/NOR-heavy mix, XORs rarer — roughly tech-mapped netlist statistics.
  const double r = rng.uniform();
  if (r < 0.30) return GateType::Nand;
  if (r < 0.55) return GateType::Nor;
  if (r < 0.75) return GateType::And;
  if (r < 0.90) return GateType::Or;
  if (r < 0.95) return GateType::Xor;
  return kTwoPlus[rng.uniform_index(6)];
}

} // namespace

GeneratedCircuit generate_benchmark_detailed(const BenchmarkSpec& spec) {
  if (spec.flipFlops < 1 || spec.inputs < 1) {
    throw std::invalid_argument("generate_benchmark: need >=1 FF and >=1 input");
  }
  Rng rng(spec.seed);
  GeneratedCircuit out;
  Netlist& nl = out.netlist;
  nl.set_name(spec.name);

  // Cluster count scales with logic size; each cluster is one "module".
  const int numClusters =
      std::max(1, spec.logicGates / 40);
  out.numClusters = numClusters;

  std::vector<int>& clusterOf = out.clusterOf;
  auto setCluster = [&](GateId id, int cluster) {
    if (static_cast<std::size_t>(id) >= clusterOf.size()) {
      clusterOf.resize(static_cast<std::size_t>(id) + 1, 0);
    }
    clusterOf[static_cast<std::size_t>(id)] = cluster;
  };

  // --- primary inputs (spread across clusters) ------------------------------
  std::vector<GateId> pis;
  for (int i = 0; i < spec.inputs; ++i) {
    const GateId id = nl.add_gate(GateType::Input, format("pi%d", i));
    setCluster(id, static_cast<int>(rng.uniform_index(numClusters)));
    pis.push_back(id);
  }

  // --- flip-flops grouped into registers -------------------------------------
  // Each register is a bank of ~registerWidth FFs living in one cluster.
  std::vector<GateId> dffs;
  std::vector<std::vector<GateId>> clusterMembers(numClusters);
  {
    int remaining = spec.flipFlops;
    int regIndex = 0;
    while (remaining > 0) {
      int width = spec.registerWidth;
      // Mild width variation (+-25 %), at least 1.
      width = std::max(1, width + static_cast<int>(rng.uniform_index(
                                      std::max(1, width / 2))) -
                              width / 4);
      width = std::min(width, remaining);
      const int cluster = static_cast<int>(rng.uniform_index(numClusters));
      for (int b = 0; b < width; ++b) {
        const GateId id =
            nl.add_gate(GateType::Dff, format("r%d_%d", regIndex, b));
        setCluster(id, cluster);
        dffs.push_back(id);
        clusterMembers[cluster].push_back(id);
      }
      remaining -= width;
      ++regIndex;
    }
  }
  // Seed every cluster pool with a few PIs/FFs so early gates have fanin.
  for (int c = 0; c < numClusters; ++c) {
    if (clusterMembers[c].empty()) {
      clusterMembers[c].push_back(pis[rng.uniform_index(pis.size())]);
    }
  }

  // --- combinational logic ----------------------------------------------------
  std::vector<GateId> allSignals = pis;
  allSignals.insert(allSignals.end(), dffs.begin(), dffs.end());
  for (int g = 0; g < spec.logicGates; ++g) {
    const int cluster = static_cast<int>(
        rng.uniform_index(numClusters));
    const std::size_t arity = 1 + rng.uniform_index(3); // 1..3
    std::vector<GateId> fanin;
    for (std::size_t f = 0; f < arity; ++f) {
      const auto& localPool = clusterMembers[cluster];
      GateId pick;
      if (!localPool.empty() && rng.chance(spec.locality)) {
        pick = localPool[rng.uniform_index(localPool.size())];
      } else {
        pick = allSignals[rng.uniform_index(allSignals.size())];
      }
      if (std::find(fanin.begin(), fanin.end(), pick) != fanin.end()) continue;
      fanin.push_back(pick);
    }
    const GateType type = random_gate_type(rng, fanin.size());
    const GateId id = nl.add_gate(fanin.size() == 1
                                      ? ((type == GateType::Not) ? GateType::Not
                                                                 : GateType::Buf)
                                      : type,
                                  format("g%d", g), std::move(fanin));
    setCluster(id, cluster);
    clusterMembers[cluster].push_back(id);
    allSignals.push_back(id);
  }

  // --- FF data inputs: a gate (or signal) from the FF's own cluster -----------
  for (GateId ff : dffs) {
    const int cluster = clusterOf[static_cast<std::size_t>(ff)];
    const auto& pool = clusterMembers[cluster];
    GateId d = ff;
    for (int attempts = 0; attempts < 8 && d == ff; ++attempts) {
      d = pool[rng.uniform_index(pool.size())];
    }
    if (d == ff) d = pis[rng.uniform_index(pis.size())];
    nl.set_fanin(ff, {d});
  }

  // --- primary outputs ---------------------------------------------------------
  for (int o = 0; o < spec.outputs; ++o) {
    nl.mark_output(allSignals[rng.uniform_index(allSignals.size())]);
  }

  nl.finalize();
  clusterOf.resize(nl.size(), 0);
  return out;
}

Netlist generate_benchmark(const BenchmarkSpec& spec) {
  return std::move(generate_benchmark_detailed(spec).netlist);
}

} // namespace nvff::bench
