// Circuit: named nodes + owned devices + unknown-vector layout.
//
// Typical use (see src/cell/ for the real latch builders):
//
//   Circuit ckt;
//   const NodeId vdd = ckt.node("vdd");
//   const NodeId out = ckt.node("out");
//   ckt.add_vsource("VDD", vdd, kGround, Waveform::dc(1.1));
//   ckt.add_nmos("MN1", out, in, kGround, kGround, {.w = 240e-9});
//   ...
//   Simulator sim(ckt);
//   auto op = sim.dc_operating_point();
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/device.hpp"
#include "spice/devices.hpp"
#include "spice/mosfet.hpp"
#include "spice/waveform.hpp"

namespace nvff::spice {

class Circuit {
public:
  Circuit() = default;
  Circuit(const Circuit&) = delete;
  Circuit& operator=(const Circuit&) = delete;
  Circuit(Circuit&&) = default;
  Circuit& operator=(Circuit&&) = default;

  /// Returns the node with this name, creating it on first use.
  /// "0", "gnd" and "GND" all alias ground.
  NodeId node(const std::string& name);

  /// Returns the node if it exists, kInvalidNode otherwise.
  NodeId find_node(const std::string& name) const;

  /// Name of a node id (for reports); ground renders as "gnd".
  const std::string& node_name(NodeId node) const;

  /// Number of non-ground nodes.
  std::size_t num_nodes() const { return nodeNames_.size(); }

  /// Number of branch-current unknowns allocated so far.
  std::size_t num_branches() const { return numBranches_; }

  /// Total unknown count (node voltages + branch currents).
  std::size_t num_unknowns() const { return num_nodes() + num_branches(); }

  // --- factories -----------------------------------------------------------
  Resistor& add_resistor(std::string name, NodeId a, NodeId b, double ohms);
  Capacitor& add_capacitor(std::string name, NodeId a, NodeId b, double farads);
  VoltageSource& add_vsource(std::string name, NodeId plus, NodeId minus, Waveform w);
  CurrentSource& add_isource(std::string name, NodeId from, NodeId to, Waveform w);

  /// Adds a MOSFET plus its four parasitic capacitances (Cgs, Cgd, Cdb, Csb)
  /// as separate linear devices.
  Mosfet& add_nmos(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
                   MosGeometry geom, MosParams params);
  Mosfet& add_pmos(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
                   MosGeometry geom, MosParams params);

  /// Adds an externally constructed device (used by the MTJ adapter).
  template <typename T, typename... Args>
  T& add_device(Args&&... args) {
    auto dev = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *dev;
    devices_.push_back(std::move(dev));
    return ref;
  }

  /// Allocates a branch-current unknown (voltage sources call this).
  std::size_t alloc_branch() { return numBranches_++; }

  const std::vector<std::unique_ptr<Device>>& devices() const { return devices_; }

  /// Finds a device by name; nullptr if absent.
  Device* find_device(const std::string& name) const;

  /// Counts devices of a given dynamic type (transistor-count reporting).
  template <typename T>
  std::size_t count_of() const {
    std::size_t n = 0;
    for (const auto& d : devices_) {
      if (dynamic_cast<const T*>(d.get()) != nullptr) ++n;
    }
    return n;
  }

private:
  Mosfet& add_mos(std::string name, MosType type, NodeId d, NodeId g, NodeId s, NodeId b,
                  MosGeometry geom, MosParams params);

  std::unordered_map<std::string, NodeId> nodesByName_;
  std::vector<std::string> nodeNames_; // index i holds name of node i+1
  std::size_t numBranches_ = 0;
  std::vector<std::unique_ptr<Device>> devices_;
};

} // namespace nvff::spice
