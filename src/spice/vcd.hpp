// VCD (Value Change Dump) export of simulated traces, so waveforms can be
// inspected in GTKWave or any EDA waveform viewer.
//
// Analog node voltages are exported twice: as `real` variables (exact
// values) and as 1-bit digital views thresholded at half the given swing
// with 10 % hysteresis (the same digitization count_transitions() uses).
#pragma once

#include <string>

#include "spice/trace.hpp"

namespace nvff::spice {

struct VcdOptions {
  std::string timescale = "1ps";
  double timeUnit = 1e-12;   ///< seconds per VCD time tick
  double swing = 1.1;        ///< rail for the digital views [V]
  bool emitDigital = true;   ///< 1-bit thresholded views
  bool emitReal = true;      ///< real-valued views
  std::string moduleName = "nvff";
};

/// Serializes every watched signal of the trace to VCD text.
std::string to_vcd(const Trace& trace, const VcdOptions& options = {});

/// Writes the VCD to a file; throws std::runtime_error on IO failure.
void save_vcd_file(const Trace& trace, const std::string& path,
                   const VcdOptions& options = {});

} // namespace nvff::spice
