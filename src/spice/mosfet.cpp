#include "spice/mosfet.hpp"

#include <cmath>

#include "util/units.hpp"

namespace nvff::spice {
namespace {

// Numerically safe softplus-squared interpolation function of the EKV model:
// F(u) = ln^2(1 + exp(u/2)). For u >> 0, F -> (u/2)^2 (square law); for
// u << 0, F -> exp(u) (subthreshold exponential).
struct Interp {
  double value;
  double derivative; // dF/du
};

Interp ekv_interp(double u) {
  // Clamp to keep exp() finite during wild Newton excursions; the clamp is
  // far outside the physically reachable range (|u| ~ 40 at 1.1 V supplies).
  if (u > 400.0) u = 400.0;
  if (u < -400.0) u = -400.0;
  double softplus; // ln(1 + exp(u/2))
  if (u > 80.0) {
    softplus = u / 2.0;
  } else {
    softplus = std::log1p(std::exp(u / 2.0));
  }
  const double sigmoid = 1.0 / (1.0 + std::exp(-u / 2.0));
  return Interp{softplus * softplus, softplus * sigmoid};
}

double smooth_abs(double x) {
  constexpr double eps = 1e-3;
  return std::sqrt(x * x + eps * eps);
}

} // namespace

MosParams MosParams::nmos_40nm_lp() {
  MosParams p;
  p.vth = 0.37;
  p.kp = 2.0e-4;
  p.n = 1.35;
  p.lambda = 0.15;
  return p;
}

MosParams MosParams::pmos_40nm_lp() {
  MosParams p;
  p.vth = 0.39;
  p.kp = 0.9e-4; // hole mobility deficit
  p.n = 1.35;
  p.lambda = 0.17;
  return p;
}

MosParams MosParams::at_corner(CmosCorner corner) const {
  MosParams p = *this;
  switch (corner) {
    case CmosCorner::Typical:
      break;
    case CmosCorner::FastFast:
      // Fast & leaky: lower threshold, higher mobility.
      p.vth -= 0.042;
      p.kp *= 1.15;
      break;
    case CmosCorner::SlowSlow:
      p.vth += 0.042;
      p.kp *= 0.87;
      break;
  }
  return p;
}

Mosfet::Mosfet(std::string name, MosType type, NodeId drain, NodeId gate, NodeId source,
               NodeId bulk, MosGeometry geometry, MosParams params)
    : Device(std::move(name)),
      type_(type),
      drain_(drain),
      gate_(gate),
      source_(source),
      bulk_(bulk),
      geometry_(geometry),
      params_(params) {}

Mosfet::Evaluation Mosfet::evaluate(double vd, double vg, double vs, double vb) const {
  // Map PMOS onto the NMOS equations by mirroring every terminal voltage
  // about the bulk. In the mirrored space the device is an NMOS; the real
  // drain->source current is the negative of the mirrored one, and the
  // double sign flip makes the real-space partials equal the mirrored ones.
  const bool pmos = (type_ == MosType::Pmos);
  const double mg = pmos ? (vb - vg) : (vg - vb);
  const double ms = pmos ? (vb - vs) : (vs - vb);
  const double md = pmos ? (vb - vd) : (vd - vb);

  const double vt = units::thermal_voltage(params_.tempK);
  const double beta = params_.kp * geometry_.w / geometry_.l;
  const double is = 2.0 * params_.n * beta * vt * vt;

  const double vp = (mg - params_.vth) / params_.n;
  const auto forward = ekv_interp((vp - ms) / vt);
  const auto reverse = ekv_interp((vp - md) / vt);

  const double i0 = is * (forward.value - reverse.value);
  // Partials of i0 in mirrored space.
  const double di0_dmg = is * (forward.derivative - reverse.derivative) / (params_.n * vt);
  const double di0_dms = -is * forward.derivative / vt;
  const double di0_dmd = is * reverse.derivative / vt;

  // Channel-length modulation on the mirrored drain-source voltage.
  const double mds = md - ms;
  const double sa = smooth_abs(mds);
  const double mclm = 1.0 + params_.lambda * sa;
  const double dsa_dmds = mds / sa;
  const double dm_dmd = params_.lambda * dsa_dmds;
  const double dm_dms = -params_.lambda * dsa_dmds;

  const double mi = i0 * mclm; // mirrored drain->source current
  const double dmi_dmg = di0_dmg * mclm;
  const double dmi_dmd = di0_dmd * mclm + i0 * dm_dmd;
  const double dmi_dms = di0_dms * mclm + i0 * dm_dms;

  Evaluation e;
  if (!pmos) {
    e.ids = mi;
    e.dVg = dmi_dmg;
    e.dVd = dmi_dmd;
    e.dVs = dmi_dms;
  } else {
    // real ids = -mi, d(real)/dV(x) = -d(mi)/d(mx) * d(mx)/dV(x) = +d(mi)/d(mx)
    e.ids = -mi;
    e.dVg = dmi_dmg;
    e.dVd = dmi_dmd;
    e.dVs = dmi_dms;
  }
  // Current depends only on voltage differences to bulk, so the bulk partial
  // balances the other three.
  e.dVb = -(e.dVg + e.dVd + e.dVs);
  return e;
}

void Mosfet::stamp(Stamper& stamper, const SimState& state) {
  const Evaluation e =
      evaluate(state.v(drain_), state.v(gate_), state.v(source_), state.v(bulk_));
  stamper.nonlinear_current(drain_, source_, e.ids,
                            {{gate_, e.dVg},
                             {drain_, e.dVd},
                             {source_, e.dVs},
                             {bulk_, e.dVb}},
                            state);
}

double Mosfet::ids(const SimState& state) const {
  return evaluate(state.v(drain_), state.v(gate_), state.v(source_), state.v(bulk_)).ids;
}

double Mosfet::cgs() const {
  return 0.5 * params_.coxArea * geometry_.w * geometry_.l + params_.covPerW * geometry_.w;
}

double Mosfet::cgd() const { return cgs(); }

double Mosfet::cdb() const { return params_.cjPerW * geometry_.w; }

double Mosfet::csb() const { return cdb(); }

} // namespace nvff::spice
