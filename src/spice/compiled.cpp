#include "spice/compiled.hpp"

#include "util/strings.hpp"

namespace nvff::spice {

CompiledCircuit::CompiledCircuit(const Circuit& circuit)
    : circuit_(&circuit),
      numNodes_(circuit.num_nodes()),
      numUnknowns_(circuit.num_unknowns()) {
  const std::size_t n = numUnknowns_;
  wordsPerRow_ = (n + 63) / 64;
  pattern_.assign(n * wordsPerRow_, 0);

  plan_.reserve(circuit.devices().size());
  for (const auto& device : circuit.devices()) {
    plan_.push_back({device.get(), !device->is_nonlinear()});
    if (device->has_step_state()) stateful_.push_back(device.get());
  }

  // Probe stamp: record every matrix slot any device can touch. Slot sets
  // are state-independent (Device::stamp contract), so one DC pass and one
  // transient pass around a zero iterate cover the full structure. The tape
  // captures the add() calls; the probe matrix itself is never written.
  DenseMatrix probeJac(n);
  std::vector<double> probeRhs(n, 0.0);
  const std::vector<double> zeros(n, 0.0);
  StampTape tape;
  const auto set_bit = [&](std::uint32_t slot) {
    const std::size_t row = slot / n;
    const std::size_t col = slot % n;
    pattern_[row * wordsPerRow_ + (col >> 6)] |= std::uint64_t{1} << (col & 63U);
  };
  const auto harvest = [&](const SimState& state) {
    for (const auto& item : plan_) {
      tape.reset();
      Stamper probe(probeJac, probeRhs, numNodes_, &tape);
      item.device->stamp(probe, state);
      for (const auto& entry : tape.jac) set_bit(entry.slot);
    }
  };
  SimState dc;
  dc.numNodes = numNodes_;
  dc.iterate = &zeros;
  dc.previous = &zeros;
  harvest(dc);
  SimState tran = dc;
  tran.transient = true;
  tran.dt = 1e-12;
  tran.time = 1e-12;
  harvest(tran);
  // The engine adds gmin on every node diagonal.
  for (std::size_t i = 0; i < numNodes_; ++i) {
    pattern_[i * wordsPerRow_ + (i >> 6)] |= std::uint64_t{1} << (i & 63U);
  }

  unknownNames_.reserve(n);
  for (std::size_t i = 0; i < numNodes_; ++i) {
    unknownNames_.push_back(circuit.node_name(static_cast<NodeId>(i + 1)));
  }
  for (std::size_t b = 0; b < circuit.num_branches(); ++b) {
    unknownNames_.push_back(format("branch#%zu", b));
  }
  for (const auto& device : circuit.devices()) {
    const auto* vs = dynamic_cast<const VoltageSource*>(device.get());
    if (vs != nullptr) {
      unknownNames_[numNodes_ + vs->branch_index()] = "I(" + vs->name() + ")";
    }
  }
}

} // namespace nvff::spice
