#include "spice/vcd.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace nvff::spice {

namespace {

/// VCD identifier codes: printable ASCII 33..126, multi-char when exhausted.
std::string id_code(std::size_t index) {
  std::string code;
  do {
    code.push_back(static_cast<char>(33 + index % 94));
    index /= 94;
  } while (index > 0);
  return code;
}

} // namespace

std::string to_vcd(const Trace& trace, const VcdOptions& options) {
  const auto names = trace.signal_names();
  std::ostringstream out;
  out << "$date nvff simulation $end\n";
  out << "$version nvff spice engine $end\n";
  out << "$timescale " << options.timescale << " $end\n";
  out << "$scope module " << options.moduleName << " $end\n";

  // Declare variables: real + digital per signal.
  std::vector<std::string> realIds(names.size());
  std::vector<std::string> bitIds(names.size());
  std::size_t code = 0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    // VCD identifiers for name-safe output: replace dots.
    std::string safe = names[i];
    for (char& c : safe) {
      if (c == '.' || c == ' ') c = '_';
    }
    if (options.emitReal) {
      realIds[i] = id_code(code++);
      out << "$var real 64 " << realIds[i] << " " << safe << "_v $end\n";
    }
    if (options.emitDigital) {
      bitIds[i] = id_code(code++);
      out << "$var wire 1 " << bitIds[i] << " " << safe << " $end\n";
    }
  }
  out << "$upscope $end\n$enddefinitions $end\n";

  const auto& times = trace.times();
  const double hi = 0.6 * options.swing;
  const double lo = 0.4 * options.swing;
  std::vector<int> digital(names.size(), -1); // -1 unknown, 0/1 known
  std::vector<double> lastReal(names.size(),
                               std::numeric_limits<double>::quiet_NaN());

  for (std::size_t t = 0; t < times.size(); ++t) {
    std::ostringstream changes;
    for (std::size_t i = 0; i < names.size(); ++i) {
      const double v = trace.samples(names[i])[t];
      if (options.emitReal &&
          (std::isnan(lastReal[i]) || v != lastReal[i])) {
        changes << "r" << v << " " << realIds[i] << "\n";
        lastReal[i] = v;
      }
      if (options.emitDigital) {
        int next = digital[i];
        if (digital[i] != 1 && v > hi) next = 1;
        else if (digital[i] != 0 && v < lo) next = 0;
        else if (digital[i] == -1) next = (v > 0.5 * options.swing) ? 1 : 0;
        if (next != digital[i]) {
          changes << next << bitIds[i] << "\n";
          digital[i] = next;
        }
      }
    }
    const std::string block = changes.str();
    if (!block.empty() || t == 0) {
      out << "#" << static_cast<long long>(std::llround(times[t] / options.timeUnit))
          << "\n"
          << block;
    }
  }
  return out.str();
}

void save_vcd_file(const Trace& trace, const std::string& path,
                   const VcdOptions& options) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write VCD file: " + path);
  out << to_vcd(trace, options);
}

} // namespace nvff::spice
