// SimWorkspace: the mutable half of the compile-once/run-many split.
//
// Everything a Newton solve scribbles on lives here — the MNA matrix, RHS,
// iterate buffers, the linear-stamp tape, the transient step buffers, and
// the pattern-cached LU state. A workspace is bound to one CompiledCircuit
// at a time and can be rebound (campaign thread pools keep one workspace per
// deck per worker). Binding sizes every buffer once; after the first solve
// the engine performs no heap allocation in the Newton inner loop.
//
// Not thread-safe: one workspace per thread, like the compiled circuit it
// is bound to.
#pragma once

#include <cstdint>
#include <vector>

#include "spice/compiled.hpp"
#include "spice/matrix.hpp"
#include "spice/sparse_lu.hpp"

namespace nvff::spice {

class SimWorkspace {
public:
  SimWorkspace() = default;
  SimWorkspace(const SimWorkspace&) = delete;
  SimWorkspace& operator=(const SimWorkspace&) = delete;

  /// (Re)binds the workspace to a compiled circuit, sizing and zeroing every
  /// buffer. Idempotent when already bound to the same instance.
  void bind(const CompiledCircuit& compiled) {
    if (bound_ == &compiled) return;
    bound_ = &compiled;
    const std::size_t n = compiled.num_unknowns();
    jacobian.resize(n); // resize() also zeroes, restoring the LU invariant
    rhs.assign(n, 0.0);
    xNew.assign(n, 0.0);
    tape.reset();
    tapeJacEnd.clear();
    tapeRhsEnd.clear();
    xPrev.clear();
    stepStart.clear();
    work.clear();
    segPrev.clear();
    lu.bind(compiled);
  }

  const CompiledCircuit* bound() const { return bound_; }

  // Newton solve scratch.
  DenseMatrix jacobian;
  std::vector<double> rhs;
  std::vector<double> xNew;

  // Linear-stamp tape, refreshed once per Newton solve, plus the cumulative
  // per-plan-item extents that let the engine replay tape slices interleaved
  // with live nonlinear stamping in exact plan order.
  StampTape tape;
  std::vector<std::uint32_t> tapeJacEnd;
  std::vector<std::uint32_t> tapeRhsEnd;

  // Transient stepping buffers (committed state, step start, attempt
  // scratch); members so repeated steps reuse capacity.
  std::vector<double> xPrev;
  std::vector<double> stepStart;
  std::vector<double> work;
  std::vector<double> segPrev;

  SparseLu lu;

private:
  const CompiledCircuit* bound_ = nullptr;
};

} // namespace nvff::spice
