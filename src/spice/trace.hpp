// Waveform capture and post-processing measurements.
//
// A Trace subscribes to the transient observer, records selected node
// voltages and source currents, and afterwards answers the questions the
// paper's evaluation asks: when did the output cross half-rail, how much
// energy did the supply deliver in a window, what is the final value.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "spice/analysis.hpp"

namespace nvff::spice {

/// Direction of a threshold crossing.
enum class Edge { Rising, Falling, Either };

/// Records named signals over a transient run.
class Trace {
public:
  /// Registers a node voltage signal.
  void watch_node(const Circuit& circuit, const std::string& nodeName);
  /// Registers the branch current of a voltage source (positive = current
  /// delivered out of the + terminal into the circuit).
  void watch_source_current(const Circuit& circuit, const std::string& sourceName);

  /// Observer to pass to Simulator::transient.
  Simulator::Observer observer();

  std::size_t num_points() const { return times_.size(); }
  const std::vector<double>& times() const { return times_; }

  /// Samples of a watched signal by name; throws if unknown.
  const std::vector<double>& samples(const std::string& name) const;
  bool has(const std::string& name) const;
  std::vector<std::string> signal_names() const;

  /// Value of `name` at (or interpolated to) time t.
  double value_at(const std::string& name, double t) const;

  /// First time after `tStart` where the signal crosses `threshold` with the
  /// given edge; linear interpolation between samples.
  std::optional<double> crossing_time(const std::string& name, double threshold,
                                      Edge edge, double tStart = 0.0) const;

  double final_value(const std::string& name) const;
  double min_value(const std::string& name, double tStart = 0.0) const;
  double max_value(const std::string& name, double tStart = 0.0) const;

  /// Trapezoidal integral of signal * weight(t) over [t0, t1]; used for
  /// charge (integral of current).
  double integral(const std::string& name, double t0, double t1) const;

  /// Number of logic transitions of the signal across half of `swing`
  /// (hysteresis 10%); used by the Fig. 7 control-activity comparison.
  int count_transitions(const std::string& name, double swing) const;

  /// CSV dump: time column + one column per watched signal.
  std::string to_csv() const;

  /// Compact ASCII rendering of the selected signals (for Fig. 6 output).
  std::string ascii_waves(const std::vector<std::string>& names, std::size_t columns,
                          double vHigh) const;

private:
  struct NodeProbe {
    std::string label;
    NodeId node;
  };
  struct SourceProbe {
    std::string label;
    std::size_t branchIndex;
    double sign;
  };
  std::size_t index_of(const std::string& name) const;

  std::vector<NodeProbe> nodeProbes_;
  std::vector<SourceProbe> sourceProbes_;
  std::vector<double> times_;
  std::vector<std::vector<double>> data_; // one vector per signal, probe order
};

/// Integrates the energy delivered by one voltage source:
///   E = integral of V(t) * I_delivered(t) dt.
/// Attach via observer chaining (call operator() from the transient
/// observer). Supports window reset to measure per-phase energy.
class SupplyEnergyMeter {
public:
  SupplyEnergyMeter(const Circuit& circuit, const std::string& sourceName);

  /// Accumulates one observed timestep.
  void observe(double time, const Solution& solution);

  /// Total accumulated energy [J].
  double energy() const { return energy_; }
  /// Energy accumulated since the last mark() call.
  double energy_since_mark() const { return energy_ - markedEnergy_; }
  void mark() { markedEnergy_ = energy_; }
  void reset();

private:
  const VoltageSource* source_;
  double energy_ = 0.0;
  double markedEnergy_ = 0.0;
  double lastTime_ = 0.0;
  double lastPower_ = 0.0;
  bool first_ = true;
};

} // namespace nvff::spice
