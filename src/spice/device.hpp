// Device abstraction for the MNA engine.
//
// Unknown vector layout: x[0 .. numNodes-1] are node voltages for nodes
// 1..numNodes (node 0 is ground and eliminated); x[numNodes ..] are branch
// currents of devices that requested one (voltage sources).
//
// The solver assembles J * x_new = rhs at every Newton-Raphson iteration;
// devices contribute via Stamper. Linear devices stamp constants; nonlinear
// devices stamp their linearization around the current iterate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spice/matrix.hpp"

namespace nvff::spice {

/// Node identifier; 0 is always ground.
using NodeId = int;
inline constexpr NodeId kGround = 0;

/// Sentinel for "no such node". Returned by Circuit::find_node on a miss;
/// never a valid device terminal (the ERC flags any device carrying it).
inline constexpr NodeId kInvalidNode = -1;

/// Snapshot of the solver state a device sees while stamping.
struct SimState {
  double time = 0.0;       ///< current timestep's absolute time
  double dt = 0.0;         ///< timestep size (0 in DC analysis)
  bool transient = false;  ///< false during DC operating point
  /// Homotopy factor on independent sources (source stepping). Always 1.0
  /// except while the recovery ladder ramps the sources up from zero to
  /// walk a hard DC operating point in from a trivially solvable circuit.
  double sourceScale = 1.0;
  std::size_t numNodes = 0;
  const std::vector<double>* iterate = nullptr; ///< current NR iterate
  const std::vector<double>* previous = nullptr; ///< converged previous step

  /// Voltage of `node` in the current NR iterate (0 for ground).
  double v(NodeId node) const {
    if (node == kGround || iterate == nullptr) return 0.0;
    return (*iterate)[static_cast<std::size_t>(node - 1)];
  }
  /// Voltage of `node` in the previously converged timestep.
  double v_prev(NodeId node) const {
    if (node == kGround || previous == nullptr) return 0.0;
    return (*previous)[static_cast<std::size_t>(node - 1)];
  }
  /// Branch current unknown in the current iterate.
  double branch(std::size_t branchIndex) const {
    if (iterate == nullptr) return 0.0;
    return (*iterate)[numNodes + branchIndex];
  }
  double branch_prev(std::size_t branchIndex) const {
    if (previous == nullptr) return 0.0;
    return (*previous)[numNodes + branchIndex];
  }
};

/// Recorded stamp contributions of the value-invariant (linear) devices:
/// flat matrix slots and RHS rows with the value each device added. The
/// engine records the tape once per Newton solve and replays it on every
/// iteration, preserving the exact accumulation order a direct stamp pass
/// would have produced (FP addition is not associative, so order matters
/// for bit-identical results).
struct StampTape {
  struct JacEntry {
    std::uint32_t slot; ///< row * dim + col in the dense matrix
    double value;
  };
  struct RhsEntry {
    std::uint32_t row;
    double value;
  };
  std::vector<JacEntry> jac;
  std::vector<RhsEntry> rhs;

  void reset() {
    jac.clear();
    rhs.clear();
  }
};

/// Write access to the MNA matrix and right-hand side with ground folding.
/// When constructed with a StampTape the stamper records contributions into
/// the tape instead of applying them (the compiled engine's cache path).
class Stamper {
public:
  Stamper(DenseMatrix& jacobian, std::vector<double>& rhs, std::size_t numNodes)
      : jacobian_(jacobian), rhs_(rhs), numNodes_(numNodes) {}

  Stamper(DenseMatrix& jacobian, std::vector<double>& rhs, std::size_t numNodes,
          StampTape* tape)
      : jacobian_(jacobian), rhs_(rhs), numNodes_(numNodes), tape_(tape) {}

  std::size_t num_nodes() const { return numNodes_; }

  /// Two-terminal conductance g between nodes a and b.
  void conductance(NodeId a, NodeId b, double g) {
    add(row(a), col(a), g);
    add(row(b), col(b), g);
    add(row(a), col(b), -g);
    add(row(b), col(a), -g);
  }

  /// Independent current `i` flowing from node `from` through the device to
  /// node `to` (i.e. out of `from`, into `to`).
  void current(NodeId from, NodeId to, double i) {
    rhs_entry(row(from), -i);
    rhs_entry(row(to), +i);
  }

  /// Raw Jacobian entry: d(KCL residual of `node`)/d(V of `byNode`).
  void jacobian_entry(NodeId node, NodeId byNode, double value) {
    add(row(node), col(byNode), value);
  }

  /// Raw Jacobian entry against a branch-current unknown.
  void jacobian_branch(NodeId node, std::size_t branchIndex, double value) {
    add(row(node), numNodes_ + branchIndex, value);
  }

  /// Raw RHS addition on a node row.
  void rhs_node(NodeId node, double value) { rhs_entry(row(node), value); }

  /// Branch equation for an ideal voltage source: V(plus) - V(minus) = v.
  /// The branch-current unknown is the current flowing from the `plus` node
  /// INTO the source (so a source delivering power to the circuit has a
  /// negative branch current).
  void branch_voltage(std::size_t branchIndex, NodeId plus, NodeId minus, double v) {
    const std::size_t bRow = numNodes_ + branchIndex;
    // KCL: branch current leaves `plus`, enters `minus`.
    add(row(plus), bRow, 1.0);
    add(row(minus), bRow, -1.0);
    // Branch equation row.
    add(bRow, col(plus), 1.0);
    add(bRow, col(minus), -1.0);
    rhs_entry(bRow, v);
  }

  /// Linearized nonlinear current I(V...) flowing from node `out` to node
  /// `in`: given the operating-point current `i0` and partial derivatives
  /// dI/dV(node) for a set of controlling nodes, stamps the NR companion.
  struct Partial {
    NodeId node;
    double dIdV;
  };
  void nonlinear_current(NodeId out, NodeId in, double i0,
                         std::initializer_list<Partial> partials,
                         const SimState& state) {
    double rhsAdj = -i0;
    for (const auto& p : partials) {
      add(row(out), col(p.node), p.dIdV);
      add(row(in), col(p.node), -p.dIdV);
      rhsAdj += p.dIdV * state.v(p.node);
    }
    rhs_entry(row(out), rhsAdj);
    rhs_entry(row(in), -rhsAdj);
  }

private:
  static constexpr std::size_t kGroundRow = static_cast<std::size_t>(-1);

  std::size_t row(NodeId n) const {
    return n == kGround ? kGroundRow : static_cast<std::size_t>(n - 1);
  }
  std::size_t col(NodeId n) const { return row(n); }

  void add(std::size_t r, std::size_t c, double v) {
    if (r == kGroundRow || c == kGroundRow) return;
    if (tape_ != nullptr) {
      tape_->jac.push_back(
          {static_cast<std::uint32_t>(r * jacobian_.size() + c), v});
      return;
    }
    jacobian_.add(r, c, v);
  }
  void rhs_entry(std::size_t r, double v) {
    if (r == kGroundRow) return;
    if (tape_ != nullptr) {
      tape_->rhs.push_back({static_cast<std::uint32_t>(r), v});
      return;
    }
    rhs_[r] += v;
  }

  DenseMatrix& jacobian_;
  std::vector<double>& rhs_;
  std::size_t numNodes_;
  StampTape* tape_ = nullptr;
};

class Circuit;

/// Base class of every circuit element.
class Device {
public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }

  /// Contributes the device's linearized equations for the current iterate.
  ///
  /// Contract for linear devices (is_nonlinear() == false): the stamped
  /// values must not depend on state.iterate, and the set of matrix slots
  /// and RHS rows touched must not depend on state at all. The compiled
  /// engine relies on this to record linear stamps once per Newton solve
  /// and replay them on every iteration.
  virtual void stamp(Stamper& stamper, const SimState& state) = 0;

  /// True if the device needs Newton-Raphson iteration.
  virtual bool is_nonlinear() const { return false; }

  /// True if end_step does real work (internal state to integrate). The
  /// engine only walks stateful devices after each committed step.
  virtual bool has_step_state() const { return false; }

  /// Called once after a transient step converged; devices with internal
  /// state (MTJ magnetization) integrate it here.
  virtual void end_step(const SimState& /*state*/) {}

private:
  std::string name_;
};

} // namespace nvff::spice
