// CompiledCircuit: the immutable half of the compile-once/run-many split.
//
// Compiling a Circuit walks it once and precomputes everything the solver
// would otherwise rediscover on every Newton iteration:
//  * the stamp plan — device pointers classified linear/nonlinear, so the
//    engine can cache the value-invariant linear stamps per solve and only
//    re-evaluate nonlinear devices per iteration (see Device::stamp contract),
//  * the structural occupancy pattern of the MNA matrix, probe-stamped once;
//    SparseLu uses it to factorize without visiting structurally-zero slots,
//  * the stateful-device list (end_step targets) and precomputed unknown
//    names for diagnostics.
//
// A CompiledCircuit holds non-owning pointers into the Circuit: the Circuit
// must outlive it and must not gain nodes or devices afterwards (mutating
// existing device parameters or waveforms is fine — that is the whole point
// of the deck patch() API). Solving mutates device state (MTJ magnetization),
// so one compiled instance belongs to one thread at a time; campaigns compile
// a separate instance per worker thread.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spice/circuit.hpp"

namespace nvff::spice {

class CompiledCircuit {
public:
  explicit CompiledCircuit(const Circuit& circuit);
  CompiledCircuit(const CompiledCircuit&) = delete;
  CompiledCircuit& operator=(const CompiledCircuit&) = delete;

  const Circuit& circuit() const { return *circuit_; }
  std::size_t num_nodes() const { return numNodes_; }
  std::size_t num_unknowns() const { return numUnknowns_; }

  /// One entry per device, in Circuit device order (stamp order is part of
  /// the engine's bit-exactness contract: FP accumulation is order-sensitive).
  struct PlanItem {
    Device* device;
    bool linear; ///< stamp is value-invariant across NR iterations
  };
  const std::vector<PlanItem>& plan() const { return plan_; }

  /// Devices whose end_step does real work (has_step_state() == true).
  const std::vector<Device*>& stateful_devices() const { return stateful_; }

  /// Structural matrix occupancy as row bitsets: bit c of row r's
  /// words_per_row() words is set iff some device can stamp slot (r, c) or
  /// the engine adds gmin there. Probe-stamped at compile time.
  const std::vector<std::uint64_t>& pattern() const { return pattern_; }
  std::size_t words_per_row() const { return wordsPerRow_; }
  bool pattern_bit(std::size_t row, std::size_t col) const {
    return (pattern_[row * wordsPerRow_ + (col >> 6)] >>
            (col & 63U)) & 1U;
  }

  /// Display name of unknown `index` (node name or "I(source)").
  const std::string& unknown_name(std::size_t index) const {
    return unknownNames_[index];
  }

private:
  const Circuit* circuit_;
  std::size_t numNodes_ = 0;
  std::size_t numUnknowns_ = 0;
  std::size_t wordsPerRow_ = 0;
  std::vector<PlanItem> plan_;
  std::vector<Device*> stateful_;
  std::vector<std::uint64_t> pattern_;
  std::vector<std::string> unknownNames_;
};

} // namespace nvff::spice
