// Pattern-cached LU with a precomputed flat fast path.
//
// The MNA matrices this engine factorizes are small (tens of unknowns) but
// are solved hundreds of thousands of times per campaign, always with the
// same structural occupancy (the compiled circuit's probe-stamped pattern)
// and, in practice, a stable pivot order from one Newton iteration to the
// next. SparseLu exploits both:
//
//  * the first factorization runs the plain dense algorithm in place and
//    records the pivot order;
//  * a symbolic pass then simulates the elimination on the occupancy bitsets
//    to find the fill-in, and — assuming the cached pivot order holds —
//    precomputes every index the numeric factorization will touch: the
//    pivot scan list per column (in the exact position order the dense scan
//    visits), the factor/update slot list per elimination step, and the
//    packed row ranges for the substitutions;
//  * fast solves gather the pattern slots into a packed buffer (the dense
//    matrix is left untouched), verify each pivot choice against the scan
//    list, and run the elimination as straight-line walks over the flat
//    lists — no permutation bookkeeping, no occupancy tests;
//  * if a pivot choice ever deviates from the recorded order, the packed
//    attempt is abandoned and the solve falls back to plain dense
//    elimination on the still-pristine matrix, records the new order, and
//    rebuilds the flat lists lazily before the next fast solve.
//
// Results are bit-identical to DenseMatrix::solve: slots outside the filled
// pattern hold exact 0.0, so every term the flat lists skip is an exact
// no-op, and the scan lists replicate the dense partial-pivot scan order —
// including first-max tie-breaks. Shares kSingularRelTol with
// DenseMatrix::solve so both paths agree on what counts as singular.
// Not thread-safe; one instance lives in each SimWorkspace.
#pragma once

#include <cstdint>
#include <vector>

#include "spice/compiled.hpp"
#include "spice/matrix.hpp"

namespace nvff::spice {

class SparseLu {
public:
  /// Binds to a compiled circuit's structural pattern and resets all cached
  /// numeric state. The caller must zero the workspace matrix when binding.
  void bind(const CompiledCircuit& compiled);

  /// Zeroes `a` for restamping. On the fast path this is free: the gather
  /// zeroes every pattern slot as it reads it, so the matrix is already
  /// clean when the next stamp begins. After a dense factorization the
  /// whole matrix is wiped.
  void clear_for_restamp(DenseMatrix& a);

  /// Solves a x = b. Fast solves move the pattern slots out of `a` (zeroing
  /// them for the next restamp) and factorize a packed copy; dense
  /// fallbacks factorize `a` IN PLACE (destroying its contents). Returns
  /// false when the matrix is numerically singular. `b` must have size
  /// a.size(). Results are bit-identical to DenseMatrix::solve for finite
  /// inputs.
  bool solve_in_place(DenseMatrix& a, const std::vector<double>& b,
                      std::vector<double>& x);

  /// Counters for tests and the perf benchmarks: how many solves went
  /// through the cached fast path vs full dense elimination.
  long fast_solve_count() const { return fastSolves_; }
  long dense_solve_count() const { return denseSolves_; }

  /// Slots in the filled pattern (structural + fill-in); 0 until the first
  /// symbolic pass. Exposed for tests and the perf benchmarks.
  std::size_t fill_slot_count() const { return fillSlots_.size(); }

private:
  bool fill_bit(std::size_t row, std::size_t col) const {
    return (fill_[row * words_ + (col >> 6)] >> (col & 63U)) & 1U;
  }

  /// Recomputes fill-in and every flat list for the current rowOrder_.
  void rebuild_symbolic();

  /// Dense elimination of columns [k0, n) on the current perm_, recording
  /// the final order on success. `pivotTol` is the precomputed relative
  /// singularity threshold.
  bool dense_factor_from(double* d, std::size_t k0, double pivotTol);

  /// Dense forward/back substitution using perm_.
  void dense_substitute(const double* d, const std::vector<double>& b,
                        std::vector<double>& x);

  /// Shared dense fallback: factorize the pristine `a` from scratch, adopt
  /// the new pivot order, and solve. Sets denseDirty_/symbolicStale_.
  bool dense_solve(DenseMatrix& a, const std::vector<double>& b,
                   std::vector<double>& x, double pivotTol);

  const CompiledCircuit* compiled_ = nullptr;
  std::size_t n_ = 0;
  std::size_t words_ = 0;

  /// Original row eliminated at each step (the cached pivot order).
  std::vector<std::size_t> rowOrder_;
  bool haveOrder_ = false;
  bool symbolicStale_ = false;
  /// Set after a pivot deviation: the order is unstable (typical during the
  /// Newton walk-in from zero, where the pivot order flips back and forth).
  /// While on probation, solves run dense — skipping both the doomed fast
  /// attempt and the symbolic rebuild — until the dense order matches the
  /// cached one twice in a row.
  bool probation_ = false;
  /// True when slots outside the filled pattern may be nonzero (after any
  /// dense elimination); forces a full clear before the next restamp.
  bool denseDirty_ = false;

  /// Structural pattern + fill-in under rowOrder_, as row bitsets.
  std::vector<std::uint64_t> fill_;
  /// Flat row-major slots of fill_ (for gathers and pattern clears). The
  /// packed buffer below is indexed parallel to this list, so each packed
  /// row is a contiguous ascending-column run.
  std::vector<std::uint32_t> fillSlots_;
  /// Column of each packed slot (fillSlots_[i] % n, precomputed).
  std::vector<std::uint32_t> packedCol_;

  /// Packed numeric buffers: packed_ holds the gathered (pristine) pattern
  /// slots so a pivot deviation can scatter them back for the dense
  /// fallback; factored_ is the working copy the elimination destroys.
  std::vector<double> packed_;
  std::vector<double> factored_;

  /// Per elimination step k (all indices into packed_):
  ///  * rowBeginPk_/diagPk_/rowEndPk_: the packed row of pivot rowOrder_[k];
  ///    [rowBeginPk_, diagPk_) are its L factors (forward substitution),
  ///    (diagPk_, rowEndPk_) its U entries (update sources / back subst).
  ///  * scanIdx_[scanOff_[k]..scanOff_[k+1]): column-k slots of the pivot
  ///    candidates, in the exact position order the dense scan visits them;
  ///    expectSel_[k] is the absolute scanIdx_ index the cached order picks.
  ///  * updFlat_[updOff_[k]..updOff_[k+1]): per candidate row below the
  ///    pivot, a group of 1 + (rowEndPk_[k] - diagPk_[k] - 1) entries: the
  ///    factor slot, then the update-target slot for each pivot U entry.
  std::vector<std::uint32_t> rowBeginPk_, diagPk_, rowEndPk_;
  std::vector<std::uint32_t> scanIdx_, scanOff_, expectSel_;
  std::vector<std::uint32_t> updFlat_, updOff_;

  /// Dense-path permutation scratch (position -> original row) and the
  /// previous order kept around for the probation stability check.
  std::vector<std::size_t> perm_;
  std::vector<std::size_t> prevOrder_;
  std::vector<double> y_;

  long fastSolves_ = 0;
  long denseSolves_ = 0;
};

} // namespace nvff::spice
