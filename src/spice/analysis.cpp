#include "spice/analysis.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace nvff::spice {

namespace {

using Clock = std::chrono::steady_clock;

/// Source-stepping homotopy schedule: the supply ramp the ladder walks.
constexpr double kSourceRamp[] = {0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 1.0};

/// Running deadline for one analysis; disabled when seconds <= 0.
///
/// Wall-clock by design: this enforces the OPT-IN `--deadline` solver
/// budget (RecoveryOptions::deadlineSeconds, default off). With a budget
/// set, which solve gets cut off depends on machine speed, so campaign
/// output is only bit-reproducible when it is off or never hit — documented
/// in DESIGN.md "Determinism invariants".
struct Deadline {
  explicit Deadline(double seconds)
      : enabled(seconds > 0.0),
        // DETLINT-ALLOW(DET001): opt-in wall-clock solver budget, off by default.
        at(Clock::now() + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(seconds > 0.0 ? seconds : 0.0))) {}
  // DETLINT-ALLOW(DET001): opt-in wall-clock solver budget, off by default.
  bool exceeded() const { return enabled && Clock::now() >= at; }

  bool enabled;
  Clock::time_point at;
};

} // namespace

const char* solve_status_name(SolveStatus status) {
  switch (status) {
    case SolveStatus::Converged: return "converged";
    case SolveStatus::SingularMatrix: return "singular-matrix";
    case SolveStatus::MaxIterations: return "max-iterations";
    case SolveStatus::NonFinite: return "non-finite";
    case SolveStatus::BudgetExhausted: return "budget-exhausted";
    case SolveStatus::DeadlineExceeded: return "deadline-exceeded";
    case SolveStatus::InvalidOptions: return "invalid-options";
    case SolveStatus::Cancelled: return "cancelled";
  }
  return "?";
}

const char* recovery_stage_name(RecoveryStage stage) {
  switch (stage) {
    case RecoveryStage::Direct: return "direct";
    case RecoveryStage::GminStepping: return "gmin-stepping";
    case RecoveryStage::TimestepBackoff: return "timestep-backoff";
    case RecoveryStage::SourceStepping: return "source-stepping";
  }
  return "?";
}

Simulator::Simulator(const Circuit& circuit)
    : compiled_(nullptr),
      ws_(nullptr),
      ownedCompiled_(std::make_unique<CompiledCircuit>(circuit)),
      ownedWs_(std::make_unique<SimWorkspace>()) {
  compiled_ = ownedCompiled_.get();
  ws_ = ownedWs_.get();
  ws_->bind(*compiled_);
}

Simulator::Simulator(const CompiledCircuit& compiled, SimWorkspace& workspace)
    : compiled_(&compiled), ws_(&workspace) {
  ws_->bind(compiled);
}

std::string Simulator::unknown_name(std::size_t index) const {
  return compiled_->unknown_name(index);
}

void Simulator::note_failure(const NewtonOutcome& outcome) {
  report_.worstNode = unknown_name(outcome.worstUnknown);
  report_.worstDelta = outcome.worstDelta;
}

void Simulator::refresh_tape(const SimState& base) {
  auto& ws = *ws_;
  ws.tape.reset();
  ws.tapeJacEnd.clear();
  ws.tapeRhsEnd.clear();
  Stamper recorder(ws.jacobian, ws.rhs, compiled_->num_nodes(), &ws.tape);
  for (const auto& item : compiled_->plan()) {
    if (item.linear) item.device->stamp(recorder, base);
    ws.tapeJacEnd.push_back(static_cast<std::uint32_t>(ws.tape.jac.size()));
    ws.tapeRhsEnd.push_back(static_cast<std::uint32_t>(ws.tape.rhs.size()));
  }
}

Simulator::NewtonOutcome Simulator::newton_solve(std::vector<double>& x,
                                                 const SimState& stateTemplate,
                                                 const NewtonOptions& options) {
  const std::size_t numNodes = compiled_->num_nodes();
  const std::size_t unknowns = compiled_->num_unknowns();
  auto& ws = *ws_;
  const auto& plan = compiled_->plan();

  // Linear stamps are value-invariant across NR iterations (they may depend
  // on time/dt/previous but never on the iterate — Device::stamp contract):
  // record them once for this solve, replay per iteration.
  SimState base = stateTemplate;
  base.numNodes = numNodes;
  refresh_tape(base);

  NewtonOutcome outcome;
  for (int iter = 0; iter < options.maxIterations; ++iter) {
    // Cooperative cancellation boundary: one atomic load per iteration is
    // noise next to the matrix factorization, and it is what lets a campaign
    // watchdog reel in a divergent solve within its trial deadline.
    if (cancel_ != nullptr && cancel_->cancelled()) {
      outcome.failure = SolveStatus::Cancelled;
      return outcome;
    }
    ++stats_.totalNewtonIterations;
    ++report_.iterations;
    outcome.iterations = iter + 1;
    ws.lu.clear_for_restamp(ws.jacobian);
    std::fill(ws.rhs.begin(), ws.rhs.end(), 0.0);

    SimState state = stateTemplate;
    state.numNodes = numNodes;
    state.iterate = &x;

    // Replay tape slices and live-stamp nonlinear devices interleaved in
    // plan order, so per-slot accumulation order (and therefore every FP
    // rounding) matches a full stamp pass bit for bit.
    Stamper stamper(ws.jacobian, ws.rhs, numNodes);
    double* jac = ws.jacobian.data();
    std::size_t j0 = 0;
    std::size_t r0 = 0;
    for (std::size_t pi = 0; pi < plan.size(); ++pi) {
      if (plan[pi].linear) {
        const std::size_t j1 = ws.tapeJacEnd[pi];
        for (; j0 < j1; ++j0) jac[ws.tape.jac[j0].slot] += ws.tape.jac[j0].value;
        const std::size_t r1 = ws.tapeRhsEnd[pi];
        for (; r0 < r1; ++r0) ws.rhs[ws.tape.rhs[r0].row] += ws.tape.rhs[r0].value;
      } else {
        plan[pi].device->stamp(stamper, state);
      }
    }
    // gmin from every node to ground stabilizes floating nodes.
    for (std::size_t i = 0; i < numNodes; ++i) ws.jacobian.add(i, i, options.gmin);

    if (!ws.lu.solve_in_place(ws.jacobian, ws.rhs, ws.xNew)) {
      outcome.failure = SolveStatus::SingularMatrix;
      return outcome;
    }
    const std::vector<double>& xNew = ws.xNew;

    // Damped update with voltage clamping; convergence is judged per
    // unknown against absTol + relTol * |iterate| (the relative reference
    // scales with the unknown's actual magnitude).
    double worstRatio = 0.0;
    for (std::size_t i = 0; i < unknowns; ++i) {
      double dx = xNew[i] - x[i];
      double absTol = options.iAbsTol;
      if (i < numNodes) {
        dx = std::clamp(dx, -options.maxVoltageStep, options.maxVoltageStep);
        x[i] = std::clamp(x[i] + dx, -options.voltageLimit, options.voltageLimit);
        absTol = options.vAbsTol;
      } else {
        x[i] += dx;
      }
      if (!std::isfinite(x[i])) {
        outcome.failure = SolveStatus::NonFinite;
        outcome.worstUnknown = i;
        outcome.worstDelta = dx;
        return outcome;
      }
      const double tol = absTol + options.relTol * std::fabs(x[i]);
      const double ratio = std::fabs(dx) / tol;
      if (ratio > worstRatio) {
        worstRatio = ratio;
        outcome.worstUnknown = i;
        outcome.worstDelta = std::fabs(dx);
      }
    }
    if (iter > 0 && worstRatio < 1.0) {
      outcome.converged = true;
      return outcome;
    }
  }
  outcome.failure = SolveStatus::MaxIterations;
  return outcome;
}

SolveStatus Simulator::dc_with_recovery(std::vector<double>& x,
                                        const NewtonOptions& options,
                                        const RecoveryOptions& recovery) {
  const Deadline deadline(recovery.deadlineSeconds);
  SimState state;
  state.time = 0.0;
  state.dt = 0.0;
  state.transient = false;

  // Rung 0: direct attempt at the target gmin.
  NewtonOutcome direct = newton_solve(x, state, options);
  if (direct.converged) return SolveStatus::Converged;
  note_failure(direct);
  SolveStatus lastFailure = direct.failure;
  // Cancellation outranks the ladder: nothing below can rescue the solve.
  if (lastFailure == SolveStatus::Cancelled) return lastFailure;

  // Rung 1: gmin stepping from a heavily regularized solution down to the
  // target gmin, warm-starting each level from the previous one.
  if (recovery.gminStepping) {
    if (deadline.exceeded()) return SolveStatus::DeadlineExceeded;
    if (++report_.retriesUsed > recovery.retryBudget) return SolveStatus::BudgetExhausted;
    report_.deepestStage = std::max(report_.deepestStage, RecoveryStage::GminStepping);
    std::fill(x.begin(), x.end(), 0.0);
    NewtonOptions stepped = options;
    bool ok = true;
    for (double gmin = 1e-2; ok; gmin /= 10.0) {
      stepped.gmin = std::max(gmin, options.gmin);
      const NewtonOutcome out = newton_solve(x, state, stepped);
      if (!out.converged) {
        note_failure(out);
        lastFailure = out.failure;
        ok = false;
        break;
      }
      ++report_.gminSteps;
      if (stepped.gmin <= options.gmin) break;
    }
    if (lastFailure == SolveStatus::Cancelled) return lastFailure;
    if (ok) {
      // Final polish exactly at the target gmin.
      stepped.gmin = options.gmin;
      const NewtonOutcome polish = newton_solve(x, state, stepped);
      if (polish.converged) return SolveStatus::Converged;
      note_failure(polish);
      lastFailure = polish.failure;
    }
  }

  // Rung 2: source stepping — ramp every independent source from a fraction
  // of its value up to 100 %, walking the operating point in by homotopy.
  if (recovery.sourceStepping) {
    if (deadline.exceeded()) return SolveStatus::DeadlineExceeded;
    if (++report_.retriesUsed > recovery.retryBudget) return SolveStatus::BudgetExhausted;
    report_.deepestStage = std::max(report_.deepestStage, RecoveryStage::SourceStepping);
    std::fill(x.begin(), x.end(), 0.0);
    bool ok = true;
    for (const double alpha : kSourceRamp) {
      SimState scaled = state;
      scaled.sourceScale = alpha;
      const NewtonOutcome out = newton_solve(x, scaled, options);
      if (!out.converged) {
        note_failure(out);
        lastFailure = out.failure;
        ok = false;
        break;
      }
      ++report_.sourceSteps;
    }
    if (ok) return SolveStatus::Converged;
  }

  return lastFailure;
}

SolveReport Simulator::solve_dc(Solution& out, const NewtonOptions& options,
                                const RecoveryOptions& recovery) {
  report_ = SolveReport{};
  cancel_ = recovery.cancel;
  std::vector<double> x(compiled_->num_unknowns(), 0.0);
  report_.status = dc_with_recovery(x, options, recovery);
  if (report_.ok()) {
    out = Solution(std::move(x), compiled_->num_nodes());
    report_.message = format("dc: converged via %s (%ld iterations)",
                             recovery_stage_name(report_.deepestStage),
                             report_.iterations);
  } else {
    report_.message =
        format("dc: %s at %s (worst %s, |dx|=%g, %ld iterations)",
               solve_status_name(report_.status),
               recovery_stage_name(report_.deepestStage),
               report_.worstNode.empty() ? "?" : report_.worstNode.c_str(),
               report_.worstDelta, report_.iterations);
  }
  return report_;
}

SolveReport Simulator::run_transient(const TransientOptions& options,
                                     const Observer& observer,
                                     const RecoveryOptions& recovery) {
  Solution initial;
  const SolveReport dcReport = solve_dc(initial, options.newton, recovery);
  if (!dcReport.ok()) return dcReport;
  SolveReport tranReport = run_transient_from(initial, options, observer, recovery);
  // Fold the operating-point effort into the returned report so callers see
  // the whole analysis.
  tranReport.iterations += dcReport.iterations;
  tranReport.gminSteps += dcReport.gminSteps;
  tranReport.sourceSteps += dcReport.sourceSteps;
  tranReport.retriesUsed += dcReport.retriesUsed;
  tranReport.deepestStage = std::max(tranReport.deepestStage, dcReport.deepestStage);
  report_ = tranReport;
  return report_;
}

SolveReport Simulator::run_transient_from(const Solution& initial,
                                          const TransientOptions& options,
                                          const Observer& observer,
                                          const RecoveryOptions& recovery) {
  report_ = SolveReport{};
  cancel_ = recovery.cancel;
  if (options.tStop <= 0.0 || options.dt <= 0.0) {
    report_.status = SolveStatus::InvalidOptions;
    report_.message = "transient: tStop and dt must be positive";
    return report_;
  }
  const Deadline deadline(recovery.deadlineSeconds);
  const std::size_t numNodes = compiled_->num_nodes();
  // Committed state and per-step scratch live in the workspace so repeated
  // steps (and repeated analyses on a pooled workspace) reuse capacity
  // instead of allocating.
  auto& ws = *ws_;
  ws.xPrev = initial.raw();
  ws.xPrev.resize(compiled_->num_unknowns(), 0.0);
  std::vector<double>& prev = ws.xPrev;

  if (observer) observer(0.0, Solution(prev, numNodes));

  double t = 0.0;
  while (t < options.tStop - options.dt * 0.5) {
    const double tNext = std::min(t + options.dt, options.tStop);
    // State at the start of this step; every recovery attempt restarts from
    // here (a failed or to-be-repolished attempt must not leak its partial
    // solution into the next one).
    ws.stepStart = prev;

    // Attempts one pass over [t, tNext] in `pieces` sub-steps with the given
    // Newton options; on success commits into prev.
    auto attempt = [&](int pieces, const NewtonOptions& newton,
                       NewtonOutcome& lastFail) -> bool {
      ws.work = ws.stepStart;
      ws.segPrev = ws.stepStart;
      double tSeg = t;
      const double h = (tNext - t) / pieces;
      for (int p = 0; p < pieces; ++p) {
        tSeg += h;
        SimState state;
        state.time = tSeg;
        state.dt = h;
        state.transient = true;
        state.numNodes = numNodes;
        state.previous = &ws.segPrev;
        const NewtonOutcome out = newton_solve(ws.work, state, newton);
        if (!out.converged) {
          lastFail = out;
          return false;
        }
        ws.segPrev = ws.work;
      }
      prev = ws.segPrev;
      return true;
    };

    // Rung 0 + rung 1: the full step, then timestep backoff (halvings).
    NewtonOutcome lastFail;
    bool done = attempt(1, options.newton, lastFail);
    int pieces = 1;
    bool aborted = false;
    if (!done && recovery.timestepBackoff &&
        lastFail.failure != SolveStatus::Cancelled) {
      for (int round = 1; round <= options.maxSubdivisions && !done; ++round) {
        // A cancelled attempt cannot be rescued by a finer step.
        if (lastFail.failure == SolveStatus::Cancelled) break;
        if (deadline.exceeded()) {
          report_.status = SolveStatus::DeadlineExceeded;
          aborted = true;
          break;
        }
        if (++report_.retriesUsed > recovery.retryBudget) {
          report_.status = SolveStatus::BudgetExhausted;
          aborted = true;
          break;
        }
        report_.deepestStage =
            std::max(report_.deepestStage, RecoveryStage::TimestepBackoff);
        pieces *= 2;
        done = attempt(pieces, options.newton, lastFail);
      }
      if (done && pieces > 1) {
        ++stats_.subdividedSteps;
        ++report_.subdivisions;
      }
    }

    // Rung 2: gmin rescue — retry the finest subdivision with a temporarily
    // raised gmin, then re-polish at the target gmin.
    if (!done && !aborted && recovery.gminStepping &&
        lastFail.failure != SolveStatus::Cancelled) {
      if (deadline.exceeded()) {
        report_.status = SolveStatus::DeadlineExceeded;
        aborted = true;
      } else if (++report_.retriesUsed > recovery.retryBudget) {
        report_.status = SolveStatus::BudgetExhausted;
        aborted = true;
      } else {
        report_.deepestStage =
            std::max(report_.deepestStage, RecoveryStage::GminStepping);
        NewtonOptions soft = options.newton;
        for (double gmin = 1e-6; gmin >= options.newton.gmin && !done; gmin /= 100.0) {
          soft.gmin = gmin;
          done = attempt(std::max(pieces, 2), soft, lastFail);
          if (done) ++report_.gminSteps;
        }
        if (done && soft.gmin > options.newton.gmin) {
          // Re-solve the committed point at the target gmin so the raised
          // conductance does not leak into the reported waveform.
          done = attempt(std::max(pieces, 2), options.newton, lastFail);
        }
        if (done) {
          ++stats_.subdividedSteps;
          ++report_.subdivisions;
        }
      }
    }

    if (!done) {
      if (report_.status == SolveStatus::Converged) {
        // Not aborted by budget/deadline: report the Newton failure itself.
        report_.status = lastFail.failure;
      }
      note_failure(lastFail);
      report_.failTime = tNext;
      report_.message = format(
          "transient: %s at t=%g after %d subdivisions (worst %s, |dx|=%g)",
          solve_status_name(report_.status), tNext, options.maxSubdivisions,
          report_.worstNode.empty() ? "?" : report_.worstNode.c_str(),
          report_.worstDelta);
      return report_;
    }
    t = tNext;
    ++stats_.totalSteps;

    // Let stateful devices (MTJs) advance their internal state.
    SimState converged;
    converged.time = t;
    converged.dt = options.dt;
    converged.transient = true;
    converged.numNodes = numNodes;
    converged.iterate = &prev;
    converged.previous = &prev;
    for (Device* device : compiled_->stateful_devices()) device->end_step(converged);

    if (observer) observer(t, Solution(prev, numNodes));
  }
  report_.message = format("transient: converged via %s (%ld iterations, %d "
                           "subdivided steps)",
                           recovery_stage_name(report_.deepestStage),
                           report_.iterations, report_.subdivisions);
  return report_;
}

Solution Simulator::dc_operating_point(const NewtonOptions& options) {
  Solution out;
  const SolveReport report = solve_dc(out, options);
  if (!report.ok()) throw ConvergenceError(report.message);
  return out;
}

void Simulator::transient(const TransientOptions& options, const Observer& observer) {
  const Solution initial = dc_operating_point(options.newton);
  transient_from(initial, options, observer);
}

void Simulator::transient_from(const Solution& initial, const TransientOptions& options,
                               const Observer& observer) {
  if (options.tStop <= 0.0 || options.dt <= 0.0) {
    throw std::invalid_argument("transient: tStop and dt must be positive");
  }
  const SolveReport report = run_transient_from(initial, options, observer);
  if (!report.ok()) throw ConvergenceError(report.message);
}

} // namespace nvff::spice
