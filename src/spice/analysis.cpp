#include "spice/analysis.hpp"

#include <algorithm>
#include <cmath>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace nvff::spice {

Simulator::Simulator(const Circuit& circuit) : circuit_(circuit) {}

bool Simulator::newton_solve(std::vector<double>& x, const SimState& stateTemplate,
                             const NewtonOptions& options) {
  const std::size_t numNodes = circuit_.num_nodes();
  const std::size_t unknowns = circuit_.num_unknowns();
  jacobian_.resize(unknowns);
  rhs_.assign(unknowns, 0.0);
  std::vector<double> xNew(unknowns, 0.0);

  for (int iter = 0; iter < options.maxIterations; ++iter) {
    ++stats_.totalNewtonIterations;
    jacobian_.clear();
    std::fill(rhs_.begin(), rhs_.end(), 0.0);

    SimState state = stateTemplate;
    state.numNodes = numNodes;
    state.iterate = &x;

    Stamper stamper(jacobian_, rhs_, numNodes);
    for (const auto& device : circuit_.devices()) device->stamp(stamper, state);
    // gmin from every node to ground stabilizes floating nodes.
    for (std::size_t i = 0; i < numNodes; ++i) jacobian_.add(i, i, options.gmin);

    if (!jacobian_.solve(rhs_, xNew)) return false;

    // Damped update with voltage clamping.
    double maxDv = 0.0;
    double maxDi = 0.0;
    for (std::size_t i = 0; i < unknowns; ++i) {
      double dx = xNew[i] - x[i];
      if (i < numNodes) {
        dx = std::clamp(dx, -options.maxVoltageStep, options.maxVoltageStep);
        x[i] = std::clamp(x[i] + dx, -options.voltageLimit, options.voltageLimit);
        maxDv = std::max(maxDv, std::fabs(dx));
      } else {
        x[i] += dx;
        maxDi = std::max(maxDi, std::fabs(dx));
      }
    }

    const bool vOk = maxDv < options.vAbsTol + options.relTol * 1.0;
    const bool iOk = maxDi < options.iAbsTol + options.relTol * 1e-3;
    if (iter > 0 && vOk && iOk) return true;
  }
  return false;
}

Solution Simulator::dc_operating_point(const NewtonOptions& options) {
  const std::size_t unknowns = circuit_.num_unknowns();
  std::vector<double> x(unknowns, 0.0);

  SimState state;
  state.time = 0.0;
  state.dt = 0.0;
  state.transient = false;

  // Direct attempt first, then gmin stepping from a heavily regularized
  // solution down to the target gmin.
  if (newton_solve(x, state, options)) {
    return Solution(std::move(x), circuit_.num_nodes());
  }

  std::fill(x.begin(), x.end(), 0.0);
  NewtonOptions stepped = options;
  for (double gmin = 1e-2; gmin >= options.gmin * 0.99; gmin /= 10.0) {
    stepped.gmin = gmin;
    if (!newton_solve(x, state, stepped)) {
      throw ConvergenceError(
          format("dc_operating_point: gmin stepping failed at gmin=%g", gmin));
    }
  }
  // Final polish at the target gmin.
  stepped.gmin = options.gmin;
  if (!newton_solve(x, state, stepped)) {
    throw ConvergenceError("dc_operating_point: final polish failed");
  }
  return Solution(std::move(x), circuit_.num_nodes());
}

void Simulator::transient(const TransientOptions& options, const Observer& observer) {
  const Solution initial = dc_operating_point(options.newton);
  transient_from(initial, options, observer);
}

void Simulator::transient_from(const Solution& initial, const TransientOptions& options,
                               const Observer& observer) {
  if (options.tStop <= 0.0 || options.dt <= 0.0) {
    throw std::invalid_argument("transient: tStop and dt must be positive");
  }
  const std::size_t numNodes = circuit_.num_nodes();
  std::vector<double> prev = initial.raw();
  prev.resize(circuit_.num_unknowns(), 0.0);

  if (observer) observer(0.0, Solution(prev, numNodes));

  double t = 0.0;
  while (t < options.tStop - options.dt * 0.5) {
    const double tNext = std::min(t + options.dt, options.tStop);
    // Try the full step; on Newton failure subdivide.
    int pieces = 1;
    bool done = false;
    for (int attempt = 0; attempt <= options.maxSubdivisions && !done; ++attempt) {
      std::vector<double> work = prev;
      std::vector<double> segPrev = prev;
      double tSeg = t;
      const double h = (tNext - t) / pieces;
      bool ok = true;
      for (int p = 0; p < pieces; ++p) {
        tSeg += h;
        SimState state;
        state.time = tSeg;
        state.dt = h;
        state.transient = true;
        state.numNodes = numNodes;
        state.previous = &segPrev;
        if (!newton_solve(work, state, options.newton)) {
          ok = false;
          break;
        }
        segPrev = work;
      }
      if (ok) {
        prev = std::move(segPrev);
        done = true;
        if (pieces > 1) ++stats_.subdividedSteps;
      } else {
        pieces *= 2;
      }
    }
    if (!done) {
      throw ConvergenceError(
          format("transient: step at t=%g failed after %d subdivisions", tNext,
                 options.maxSubdivisions));
    }
    t = tNext;
    ++stats_.totalSteps;

    // Let stateful devices (MTJs) advance their internal state.
    SimState converged;
    converged.time = t;
    converged.dt = options.dt;
    converged.transient = true;
    converged.numNodes = numNodes;
    converged.iterate = &prev;
    converged.previous = &prev;
    for (const auto& device : circuit_.devices()) device->end_step(converged);

    if (observer) observer(t, Solution(prev, numNodes));
  }
}

} // namespace nvff::spice
