#include "spice/sparse_lu.hpp"

#include <algorithm>
#include <cmath>

namespace nvff::spice {

namespace {
constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
} // namespace

void SparseLu::bind(const CompiledCircuit& compiled) {
  compiled_ = &compiled;
  n_ = compiled.num_unknowns();
  words_ = compiled.words_per_row();
  rowOrder_.clear();
  haveOrder_ = false;
  symbolicStale_ = false;
  denseDirty_ = false;
  probation_ = false;
  fill_.clear();
  fillSlots_.clear();
  packedCol_.clear();
  packed_.clear();
  factored_.clear();
  rowBeginPk_.clear();
  diagPk_.clear();
  rowEndPk_.clear();
  scanIdx_.clear();
  scanOff_.clear();
  expectSel_.clear();
  updFlat_.clear();
  updOff_.clear();
  perm_.assign(n_, 0);
  y_.assign(n_, 0.0);
  fastSolves_ = 0;
  denseSolves_ = 0;
}

void SparseLu::clear_for_restamp(DenseMatrix& a) {
  if (denseDirty_ || !haveOrder_ || symbolicStale_) {
    a.clear();
    denseDirty_ = false;
    return;
  }
  // Fast path: the previous solve's gather already zeroed every pattern
  // slot, and nothing else was written. The matrix is clean.
}

void SparseLu::rebuild_symbolic() {
  const std::size_t n = n_;
  const std::size_t w = words_;
  fill_.assign(compiled_->pattern().begin(), compiled_->pattern().end());

  // Simulate the elimination under rowOrder_ on the bitsets: eliminating
  // column k spreads the pivot row's columns > k into every later row that
  // holds an entry in column k.
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint64_t* src = &fill_[rowOrder_[k] * w];
    const std::size_t kw = k >> 6;
    const std::uint64_t aboveMask =
        (k & 63U) == 63U ? 0 : (~std::uint64_t{0} << ((k & 63U) + 1));
    for (std::size_t i = k + 1; i < n; ++i) {
      std::uint64_t* dst = &fill_[rowOrder_[i] * w];
      if (((dst[kw] >> (k & 63U)) & 1U) == 0) continue;
      dst[kw] |= src[kw] & aboveMask;
      for (std::size_t wi = kw + 1; wi < w; ++wi) dst[wi] |= src[wi];
    }
  }

  // Packed layout: the filled slots in row-major order, so each row is a
  // contiguous ascending-column run. slotToPk maps (row * n + col) back to
  // the packed index while the lists below are built.
  fillSlots_.clear();
  packedCol_.clear();
  std::vector<std::uint32_t> slotToPk(n * n, kNoSlot);
  std::vector<std::uint32_t> rowBegin(n + 1, 0);
  for (std::size_t r = 0; r < n; ++r) {
    rowBegin[r] = static_cast<std::uint32_t>(fillSlots_.size());
    for (std::size_t c = 0; c < n; ++c) {
      if (!fill_bit(r, c)) continue;
      slotToPk[r * n + c] = static_cast<std::uint32_t>(fillSlots_.size());
      fillSlots_.push_back(static_cast<std::uint32_t>(r * n + c));
      packedCol_.push_back(static_cast<std::uint32_t>(c));
    }
  }
  rowBegin[n] = static_cast<std::uint32_t>(fillSlots_.size());
  packed_.assign(fillSlots_.size(), 0.0);
  factored_.assign(fillSlots_.size(), 0.0);

  rowBeginPk_.assign(n, 0);
  diagPk_.assign(n, 0);
  rowEndPk_.assign(n, 0);
  scanIdx_.clear();
  scanOff_.assign(n + 1, 0);
  expectSel_.assign(n, kNoSlot);
  updFlat_.clear();
  updOff_.assign(n + 1, 0);

  // Replay the dense algorithm's permutation evolution under the cached
  // order to precompute, for every step, the exact position-ordered pivot
  // scan and the factor/update slots. As long as a live solve's pivots
  // match rowOrder_, its permutation state equals this simulation.
  std::vector<std::size_t> perm(n), pos(n);
  for (std::size_t i = 0; i < n; ++i) {
    perm[i] = i;
    pos[i] = i;
  }
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t pr = rowOrder_[k];
    rowBeginPk_[k] = rowBegin[pr];
    diagPk_[k] = slotToPk[pr * n + k];
    rowEndPk_[k] = rowBegin[pr + 1];

    for (std::size_t i = k; i < n; ++i) {
      const std::size_t r = perm[i];
      const std::uint32_t pk = slotToPk[r * n + k];
      if (pk == kNoSlot) continue;
      if (r == pr) expectSel_[k] = static_cast<std::uint32_t>(scanIdx_.size());
      scanIdx_.push_back(pk);
    }
    scanOff_[k + 1] = static_cast<std::uint32_t>(scanIdx_.size());

    const std::size_t p = pos[pr];
    std::swap(perm[k], perm[p]);
    pos[perm[p]] = p;
    pos[perm[k]] = k;

    for (std::size_t i = k + 1; i < n; ++i) {
      const std::size_t r = perm[i];
      const std::uint32_t fk = slotToPk[r * n + k];
      if (fk == kNoSlot) continue;
      updFlat_.push_back(fk);
      for (std::uint32_t u = diagPk_[k] + 1; u < rowEndPk_[k]; ++u) {
        // fill(r, k) and fill(pr, c > k) imply fill(r, c) by construction.
        updFlat_.push_back(slotToPk[r * n + packedCol_[u]]);
      }
    }
    updOff_[k + 1] = static_cast<std::uint32_t>(updFlat_.size());
  }
  symbolicStale_ = false;
}

bool SparseLu::dense_factor_from(double* d, std::size_t k0, double pivotTol) {
  const std::size_t n = n_;
  for (std::size_t k = k0; k < n; ++k) {
    std::size_t pivot = k;
    double best = std::fabs(d[perm_[k] * n + k]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(d[perm_[i] * n + k]);
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best <= pivotTol) return false;
    std::swap(perm_[k], perm_[pivot]);
    const double diag = d[perm_[k] * n + k];
    for (std::size_t i = k + 1; i < n; ++i) {
      double& factor = d[perm_[i] * n + k];
      factor /= diag;
      const double f = factor;
      if (f == 0.0) continue;
      const double* src = &d[perm_[k] * n];
      double* dst = &d[perm_[i] * n];
      for (std::size_t j = k + 1; j < n; ++j) dst[j] -= f * src[j];
    }
  }
  return true;
}

void SparseLu::dense_substitute(const double* d, const std::vector<double>& b,
                                std::vector<double>& x) {
  const std::size_t n = n_;
  x.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[perm_[i]];
    const double* row = &d[perm_[i] * n];
    for (std::size_t j = 0; j < i; ++j) acc -= row[j] * y_[j];
    y_[i] = acc;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y_[ii];
    const double* row = &d[perm_[ii] * n];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= row[j] * x[j];
    x[ii] = acc / row[ii];
  }
}

bool SparseLu::dense_solve(DenseMatrix& a, const std::vector<double>& b,
                           std::vector<double>& x, double pivotTol) {
  const std::size_t n = n_;
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;
  denseDirty_ = true;
  ++denseSolves_;
  if (!dense_factor_from(a.data(), 0, pivotTol)) {
    haveOrder_ = false; // re-record the order on the next solve
    return false;
  }
  rowOrder_.assign(perm_.begin(), perm_.end());
  haveOrder_ = true;
  symbolicStale_ = true;
  dense_substitute(a.data(), b, x);
  return true;
}

bool SparseLu::solve_in_place(DenseMatrix& a, const std::vector<double>& b,
                              std::vector<double>& x) {
  const std::size_t n = n_;
  double* d = a.data();

  if (!haveOrder_) {
    // First factorization (or the cached order was dropped): plain dense
    // elimination, recording the pivot order for the fast path.
    return dense_solve(a, b, x, kSingularRelTol * a.max_abs());
  }
  if (probation_) {
    // The pivot order deviated recently (typically the Newton walk-in from
    // zero, where it flips back and forth). Solve densely — no doomed fast
    // attempt, no symbolic rebuild — until the order holds steady once.
    prevOrder_.assign(rowOrder_.begin(), rowOrder_.end());
    const bool ok = dense_solve(a, b, x, kSingularRelTol * a.max_abs());
    if (ok && rowOrder_ == prevOrder_) probation_ = false;
    return ok;
  }
  if (symbolicStale_) rebuild_symbolic();

  // Gather the pattern slots into the packed buffers, zeroing them behind
  // us so the next restamp starts from a clean matrix for free. packed_
  // keeps the pristine values (a pivot deviation scatters them back for the
  // dense fallback); factored_ is the copy the elimination destroys. Slots
  // outside the filled pattern are exactly zero, so the packed max equals a
  // full max_abs(); the four lanes break the serial max dependency chain
  // and merge to the identical result.
  const std::size_t m = fillSlots_.size();
  double* pk = packed_.data();
  double mx0 = 0.0, mx1 = 0.0, mx2 = 0.0, mx3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const double v0 = d[fillSlots_[i]];
    const double v1 = d[fillSlots_[i + 1]];
    const double v2 = d[fillSlots_[i + 2]];
    const double v3 = d[fillSlots_[i + 3]];
    d[fillSlots_[i]] = 0.0;
    d[fillSlots_[i + 1]] = 0.0;
    d[fillSlots_[i + 2]] = 0.0;
    d[fillSlots_[i + 3]] = 0.0;
    pk[i] = v0;
    pk[i + 1] = v1;
    pk[i + 2] = v2;
    pk[i + 3] = v3;
    mx0 = std::max(mx0, std::fabs(v0));
    mx1 = std::max(mx1, std::fabs(v1));
    mx2 = std::max(mx2, std::fabs(v2));
    mx3 = std::max(mx3, std::fabs(v3));
  }
  for (; i < m; ++i) {
    const double v = d[fillSlots_[i]];
    d[fillSlots_[i]] = 0.0;
    pk[i] = v;
    mx0 = std::max(mx0, std::fabs(v));
  }
  const double maxAbs = std::max(std::max(mx0, mx1), std::max(mx2, mx3));
  const double pivotTol = kSingularRelTol * maxAbs;
  double* fk = factored_.data();
  std::copy(pk, pk + m, fk);

  for (std::size_t k = 0; k < n; ++k) {
    // Pivot scan in precomputed position order. The dense scan starts from
    // position k (exact 0.0 when that row has no entry in column k) and
    // only a strictly larger magnitude displaces the running best, so
    // first-max over this list replicates it bit for bit.
    const std::uint32_t sBegin = scanOff_[k];
    const std::uint32_t sEnd = scanOff_[k + 1];
    double best = 0.0;
    std::uint32_t sel = kNoSlot;
    for (std::uint32_t si = sBegin; si < sEnd; ++si) {
      const double v = std::fabs(fk[scanIdx_[si]]);
      if (v > best) {
        best = v;
        sel = si;
      }
    }
    if (best <= pivotTol) return false; // matrix already cleared; dense agrees
    if (sel != expectSel_[k]) {
      // Pivot deviated from the cached order: scatter the pristine values
      // back (restoring the matrix exactly as stamped) and solve densely,
      // adopting the new order. Probation keeps subsequent solves dense
      // until the order settles.
      for (std::size_t s = 0; s < m; ++s) d[fillSlots_[s]] = pk[s];
      probation_ = true;
      return dense_solve(a, b, x, pivotTol);
    }

    const double diag = fk[diagPk_[k]];
    const std::uint32_t uBegin = diagPk_[k] + 1;
    const std::uint32_t uLen = rowEndPk_[k] - uBegin;
    const std::uint32_t* grp = updFlat_.data() + updOff_[k];
    const std::uint32_t* grpEnd = updFlat_.data() + updOff_[k + 1];
    for (; grp != grpEnd; grp += 1 + uLen) {
      const double f = (fk[grp[0]] /= diag);
      if (f == 0.0) continue;
      for (std::uint32_t u = 0; u < uLen; ++u) {
        fk[grp[1 + u]] -= f * fk[uBegin + u];
      }
    }
  }

  // Pattern-guided substitution over the packed rows; every term the dense
  // substitution would add beyond these is an exact no-op.
  x.assign(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    double acc = b[rowOrder_[r]];
    for (std::uint32_t t = rowBeginPk_[r]; t < diagPk_[r]; ++t) {
      acc -= fk[t] * y_[packedCol_[t]];
    }
    y_[r] = acc;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y_[ii];
    for (std::uint32_t t = diagPk_[ii] + 1; t < rowEndPk_[ii]; ++t) {
      acc -= fk[t] * x[packedCol_[t]];
    }
    x[ii] = acc / fk[diagPk_[ii]];
  }
  ++fastSolves_;
  return true;
}

} // namespace nvff::spice
