// Dense linear algebra for the MNA solver.
//
// The latch circuits this library simulates have tens of unknowns, so a
// cache-friendly dense LU with partial pivoting beats any sparse machinery.
#pragma once

#include <cstddef>
#include <vector>

namespace nvff::spice {

/// Row-major dense matrix with LU factorization (partial pivoting).
class DenseMatrix {
public:
  DenseMatrix() = default;
  explicit DenseMatrix(std::size_t n);

  void resize(std::size_t n);
  std::size_t size() const { return n_; }

  /// Sets every entry to zero (keeps dimensions).
  void clear();

  double& at(std::size_t row, std::size_t col) { return data_[row * n_ + col]; }
  double at(std::size_t row, std::size_t col) const { return data_[row * n_ + col]; }

  /// Adds `value` to entry (row, col).
  void add(std::size_t row, std::size_t col, double value) {
    data_[row * n_ + col] += value;
  }

  /// Factorizes a copy of this matrix and solves A x = b.
  /// Returns false if the matrix is numerically singular.
  bool solve(const std::vector<double>& b, std::vector<double>& x) const;

  /// Infinity norm of the matrix (max absolute row sum).
  double norm_inf() const;

private:
  std::size_t n_ = 0;
  std::vector<double> data_;
};

} // namespace nvff::spice
