// Dense linear algebra for the MNA solver.
//
// The latch circuits this library simulates have tens of unknowns, so a
// cache-friendly dense LU with partial pivoting beats any sparse machinery.
// The compiled-circuit fast path (sparse_lu.hpp) layers a structural-pattern
// cache on top of this storage; both share the pivot tolerance below so they
// agree on what counts as singular.
#pragma once

#include <cstddef>
#include <vector>

namespace nvff::spice {

/// A pivot is singular when it is this small RELATIVE to the largest entry
/// of the matrix being factorized. The old absolute 1e-300 test passed any
/// badly-scaled singular system whose residual pivots stayed above double
/// underflow; a relative test is scale-free. The margin is chosen so the
/// smallest legitimate pivots the engine produces (gmin-only diagonals at
/// 1e-12 against branch-row entries of 1.0) clear it by ~100x.
inline constexpr double kSingularRelTol = 1e-14;

/// Row-major dense matrix with LU factorization (partial pivoting).
class DenseMatrix {
public:
  DenseMatrix() = default;
  explicit DenseMatrix(std::size_t n);

  void resize(std::size_t n);
  std::size_t size() const { return n_; }

  /// Sets every entry to zero (keeps dimensions).
  void clear();

  double& at(std::size_t row, std::size_t col) { return data_[row * n_ + col]; }
  double at(std::size_t row, std::size_t col) const { return data_[row * n_ + col]; }

  /// Adds `value` to entry (row, col).
  void add(std::size_t row, std::size_t col, double value) {
    data_[row * n_ + col] += value;
  }

  /// Raw row-major storage (flat slot = row * size() + col).
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Largest absolute entry (the scale reference for the pivot tolerance).
  double max_abs() const;

  /// Factorizes a copy of this matrix and solves A x = b.
  /// Returns false if the matrix is numerically singular (pivot below
  /// kSingularRelTol relative to the matrix scale).
  bool solve(const std::vector<double>& b, std::vector<double>& x) const;

  /// Infinity norm of the matrix (max absolute row sum).
  double norm_inf() const;

private:
  std::size_t n_ = 0;
  std::vector<double> data_;
};

} // namespace nvff::spice
