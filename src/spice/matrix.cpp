#include "spice/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace nvff::spice {

DenseMatrix::DenseMatrix(std::size_t n) { resize(n); }

void DenseMatrix::resize(std::size_t n) {
  n_ = n;
  data_.assign(n * n, 0.0);
}

void DenseMatrix::clear() { std::fill(data_.begin(), data_.end(), 0.0); }

double DenseMatrix::max_abs() const {
  double best = 0.0;
  for (const double v : data_) best = std::max(best, std::fabs(v));
  return best;
}

bool DenseMatrix::solve(const std::vector<double>& b, std::vector<double>& x) const {
  const std::size_t n = n_;
  if (b.size() != n) return false;
  std::vector<double> lu = data_;
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  const double pivotTol = kSingularRelTol * max_abs();

  // Doolittle LU with partial pivoting.
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot = k;
    double best = std::fabs(lu[perm[k] * n + k]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(lu[perm[i] * n + k]);
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best <= pivotTol) return false;
    std::swap(perm[k], perm[pivot]);
    const double diag = lu[perm[k] * n + k];
    for (std::size_t i = k + 1; i < n; ++i) {
      double& factor = lu[perm[i] * n + k];
      factor /= diag;
      const double f = factor;
      if (f == 0.0) continue;
      const double* src = &lu[perm[k] * n];
      double* dst = &lu[perm[i] * n];
      for (std::size_t j = k + 1; j < n; ++j) dst[j] -= f * src[j];
    }
  }

  // Forward substitution (unit lower triangular).
  x.assign(n, 0.0);
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[perm[i]];
    const double* row = &lu[perm[i] * n];
    for (std::size_t j = 0; j < i; ++j) acc -= row[j] * y[j];
    y[i] = acc;
  }
  // Back substitution. Every diagonal passed the pivot test above, so no
  // further singularity check is needed here.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    const double* row = &lu[perm[ii] * n];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= row[j] * x[j];
    x[ii] = acc / row[ii];
  }
  return true;
}

double DenseMatrix::norm_inf() const {
  double best = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    double rowSum = 0.0;
    for (std::size_t j = 0; j < n_; ++j) rowSum += std::fabs(data_[i * n_ + j]);
    best = std::max(best, rowSum);
  }
  return best;
}

} // namespace nvff::spice
