#include "spice/waveform.hpp"

#include <cmath>
#include <stdexcept>

namespace nvff::spice {

void Pwl::add_point(double time, double value) {
  if (!points_.empty() && time < points_.back().first) {
    throw std::invalid_argument("Pwl: non-monotonic time");
  }
  points_.emplace_back(time, value);
}

void Pwl::add_step(double time, double value, double rampTime) {
  const double prev = points_.empty() ? value : points_.back().second;
  if (points_.empty()) {
    add_point(0.0, value);
    return;
  }
  add_point(time, prev);
  add_point(time + rampTime, value);
}

double Pwl::value(double time) const {
  if (points_.empty()) return 0.0;
  if (time <= points_.front().first) return points_.front().second;
  if (time >= points_.back().first) return points_.back().second;
  // Linear scan is fine: waveforms have tens of points and value() is called
  // in time order; could binary-search if profiles ever say otherwise.
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (time <= points_[i].first) {
      const auto& [t0, v0] = points_[i - 1];
      const auto& [t1, v1] = points_[i];
      if (t1 <= t0) return v1;
      const double frac = (time - t0) / (t1 - t0);
      return v0 + frac * (v1 - v0);
    }
  }
  return points_.back().second;
}

Waveform Waveform::dc(double value) {
  Waveform w;
  w.kind_ = Kind::Dc;
  w.dc_ = value;
  return w;
}

Waveform Waveform::pulse(double v1, double v2, double delay, double rise, double fall,
                         double width, double period) {
  Waveform w;
  w.kind_ = Kind::Pulse;
  w.v1_ = v1;
  w.v2_ = v2;
  w.delay_ = delay;
  w.rise_ = rise;
  w.fall_ = fall;
  w.width_ = width;
  w.period_ = period;
  return w;
}

Waveform Waveform::pwl(Pwl pwl) {
  Waveform w;
  w.kind_ = Kind::PwlKind;
  w.pwl_ = std::move(pwl);
  return w;
}

double Waveform::value(double time) const {
  switch (kind_) {
    case Kind::Dc:
      return dc_;
    case Kind::PwlKind:
      return pwl_.value(time);
    case Kind::Pulse: {
      if (time < delay_) return v1_;
      double t = time - delay_;
      if (period_ > 0.0) t = std::fmod(t, period_);
      if (t < rise_) return v1_ + (v2_ - v1_) * (rise_ > 0 ? t / rise_ : 1.0);
      t -= rise_;
      if (t < width_) return v2_;
      t -= width_;
      if (t < fall_) return v2_ + (v1_ - v2_) * (fall_ > 0 ? t / fall_ : 1.0);
      return v1_;
    }
  }
  return 0.0;
}

double Waveform::active_until() const {
  switch (kind_) {
    case Kind::Dc:
      return 0.0;
    case Kind::PwlKind:
      return pwl_.last_time();
    case Kind::Pulse:
      // Periodic forever; report one period past the delay as "interesting".
      return delay_ + rise_ + width_ + fall_ + period_;
  }
  return 0.0;
}

} // namespace nvff::spice
