#include "spice/circuit.hpp"

#include <stdexcept>

namespace nvff::spice {
namespace {
const std::string kGroundName = "gnd";

bool is_ground_name(const std::string& name) {
  return name == "0" || name == "gnd" || name == "GND" || name == "vss" ||
         name == "VSS";
}
} // namespace

NodeId Circuit::node(const std::string& name) {
  if (is_ground_name(name)) return kGround;
  auto it = nodesByName_.find(name);
  if (it != nodesByName_.end()) return it->second;
  nodeNames_.push_back(name);
  const NodeId id = static_cast<NodeId>(nodeNames_.size());
  nodesByName_.emplace(name, id);
  return id;
}

NodeId Circuit::find_node(const std::string& name) const {
  if (is_ground_name(name)) return kGround;
  auto it = nodesByName_.find(name);
  if (it == nodesByName_.end()) return kInvalidNode;
  return it->second;
}

const std::string& Circuit::node_name(NodeId node) const {
  if (node == kGround) return kGroundName;
  const auto idx = static_cast<std::size_t>(node - 1);
  if (idx >= nodeNames_.size()) throw std::out_of_range("Circuit::node_name");
  return nodeNames_[idx];
}

Resistor& Circuit::add_resistor(std::string name, NodeId a, NodeId b, double ohms) {
  return add_device<Resistor>(std::move(name), a, b, ohms);
}

Capacitor& Circuit::add_capacitor(std::string name, NodeId a, NodeId b, double farads) {
  return add_device<Capacitor>(std::move(name), a, b, farads);
}

VoltageSource& Circuit::add_vsource(std::string name, NodeId plus, NodeId minus,
                                    Waveform w) {
  const std::size_t branch = alloc_branch();
  return add_device<VoltageSource>(std::move(name), plus, minus, std::move(w), branch);
}

CurrentSource& Circuit::add_isource(std::string name, NodeId from, NodeId to, Waveform w) {
  return add_device<CurrentSource>(std::move(name), from, to, std::move(w));
}

Mosfet& Circuit::add_mos(std::string name, MosType type, NodeId d, NodeId g, NodeId s,
                         NodeId b, MosGeometry geom, MosParams params) {
  Mosfet& fet = add_device<Mosfet>(name, type, d, g, s, b, geom, params);
  // Parasitic capacitances as linear companions (keeps the Newton loop's
  // nonlinearity purely resistive).
  add_capacitor(name + ".cgs", g, s, fet.cgs());
  add_capacitor(name + ".cgd", g, d, fet.cgd());
  add_capacitor(name + ".cdb", d, b, fet.cdb());
  add_capacitor(name + ".csb", s, b, fet.csb());
  return fet;
}

Mosfet& Circuit::add_nmos(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
                          MosGeometry geom, MosParams params) {
  return add_mos(std::move(name), MosType::Nmos, d, g, s, b, geom, params);
}

Mosfet& Circuit::add_pmos(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
                          MosGeometry geom, MosParams params) {
  return add_mos(std::move(name), MosType::Pmos, d, g, s, b, geom, params);
}

Device* Circuit::find_device(const std::string& name) const {
  for (const auto& d : devices_) {
    if (d->name() == name) return d.get();
  }
  return nullptr;
}

} // namespace nvff::spice
