// Analyses: DC operating point and transient.
#pragma once

#include <functional>
#include <stdexcept>
#include <vector>

#include "spice/circuit.hpp"

namespace nvff::spice {

/// Thrown when Newton-Raphson cannot converge even with all fallbacks.
class ConvergenceError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Newton-Raphson tuning knobs.
struct NewtonOptions {
  int maxIterations = 150;
  double vAbsTol = 1e-6;      ///< node voltage convergence [V]
  double iAbsTol = 1e-9;      ///< branch current convergence [A]
  double relTol = 1e-4;       ///< relative convergence criterion
  double maxVoltageStep = 0.4; ///< per-iteration damping clamp [V]
  double voltageLimit = 10.0;  ///< hard clamp on node voltages [V]
  double gmin = 1e-12;         ///< conductance to ground on every node [S]
};

struct TransientOptions {
  double tStop = 0.0;     ///< end time [s]
  double dt = 1e-12;      ///< major step [s]
  int maxSubdivisions = 8; ///< halvings of dt when a step fails to converge
  NewtonOptions newton;
};

/// A converged solution: node voltages + branch currents at one time point.
class Solution {
public:
  Solution() = default;
  Solution(std::vector<double> x, std::size_t numNodes)
      : x_(std::move(x)), numNodes_(numNodes) {}

  double v(NodeId node) const {
    if (node == kGround) return 0.0;
    return x_[static_cast<std::size_t>(node - 1)];
  }
  double branch_current(std::size_t branchIndex) const {
    return x_[numNodes_ + branchIndex];
  }
  const std::vector<double>& raw() const { return x_; }
  std::size_t num_nodes() const { return numNodes_; }

  /// SimState view of this solution (iterate == previous == this).
  SimState as_state(double time = 0.0) const {
    SimState s;
    s.time = time;
    s.numNodes = numNodes_;
    s.iterate = &x_;
    s.previous = &x_;
    return s;
  }

private:
  std::vector<double> x_;
  std::size_t numNodes_ = 0;
};

/// Runs analyses over a Circuit. The circuit must outlive the simulator and
/// must not gain nodes/devices between analyses.
class Simulator {
public:
  explicit Simulator(const Circuit& circuit);

  /// DC operating point with gmin stepping fallback.
  Solution dc_operating_point(const NewtonOptions& options = {});

  /// Observer invoked after the initial operating point (t = 0) and after
  /// every converged major step.
  using Observer = std::function<void(double time, const Solution& solution)>;

  /// Transient from a DC operating point at the t=0 source values.
  void transient(const TransientOptions& options, const Observer& observer);

  /// Transient from a caller-provided initial condition.
  void transient_from(const Solution& initial, const TransientOptions& options,
                      const Observer& observer);

  /// Statistics of the most recent analysis (for tests and tuning).
  struct Stats {
    long totalNewtonIterations = 0;
    long totalSteps = 0;
    long subdividedSteps = 0;
  };
  const Stats& stats() const { return stats_; }

private:
  /// One Newton solve; returns true on convergence, leaving the result in x.
  bool newton_solve(std::vector<double>& x, const SimState& stateTemplate,
                    const NewtonOptions& options);

  const Circuit& circuit_;
  DenseMatrix jacobian_;
  std::vector<double> rhs_;
  Stats stats_;
};

} // namespace nvff::spice
