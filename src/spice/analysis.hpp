// Analyses: DC operating point and transient.
//
// Two API layers:
//  * The RESULT layer (`solve_dc`, `run_transient`, `run_transient_from`)
//    never throws on solver trouble. Every call returns a SolveReport that
//    classifies the outcome (converged / singular matrix / iteration limit /
//    non-finite iterate / budget / deadline), names the worst-behaved
//    unknown, and records which rung of the recovery ladder rescued the
//    solve. Monte-Carlo campaigns use this layer so a hard trial is a data
//    point, not an exception.
//  * The THROWING layer (`dc_operating_point`, `transient`,
//    `transient_from`) is a thin shim over the result layer that raises
//    ConvergenceError with the report's message — the original API, kept so
//    existing callers compile unchanged.
//
// Recovery ladder (RecoveryOptions): when a direct Newton solve fails the
// simulator escalates through
//    gmin stepping  ->  timestep backoff (transient)  ->  source stepping
// charging each escalation against a retry budget, optionally bounded by a
// wall-clock deadline. All rungs are deterministic; the deadline is the only
// wall-clock-dependent knob and defaults to off so identical inputs give
// identical outputs.
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/compiled.hpp"
#include "spice/workspace.hpp"
#include "util/cancellation.hpp"

namespace nvff::spice {

/// Thrown when Newton-Raphson cannot converge even with all fallbacks.
class ConvergenceError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Newton-Raphson tuning knobs.
struct NewtonOptions {
  int maxIterations = 150;
  double vAbsTol = 1e-6;      ///< node voltage convergence [V]
  double iAbsTol = 1e-9;      ///< branch current convergence [A]
  double relTol = 1e-4;       ///< relative convergence criterion
  double maxVoltageStep = 0.4; ///< per-iteration damping clamp [V]
  double voltageLimit = 10.0;  ///< hard clamp on node voltages [V]
  double gmin = 1e-12;         ///< conductance to ground on every node [S]
};

struct TransientOptions {
  double tStop = 0.0;     ///< end time [s]
  double dt = 1e-12;      ///< major step [s]
  int maxSubdivisions = 8; ///< halvings of dt when a step fails to converge
  NewtonOptions newton;
};

/// How a solve ended.
enum class SolveStatus {
  Converged,       ///< solution is valid
  SingularMatrix,  ///< LU factorization failed (structurally bad circuit)
  MaxIterations,   ///< Newton hit the iteration cap without converging
  NonFinite,       ///< the iterate left the representable range (NaN/inf)
  BudgetExhausted, ///< recovery ladder ran out of retry budget
  DeadlineExceeded,///< wall-clock deadline hit mid-recovery
  InvalidOptions,  ///< caller error (e.g. non-positive tStop/dt)
  Cancelled,       ///< a CancelToken fired (trial watchdog / campaign stop)
};
const char* solve_status_name(SolveStatus status);

/// The deepest recovery-ladder rung that was needed (Direct = none).
enum class RecoveryStage { Direct, GminStepping, TimestepBackoff, SourceStepping };
const char* recovery_stage_name(RecoveryStage stage);

/// Configuration of the recovery ladder.
struct RecoveryOptions {
  bool gminStepping = true;    ///< gmin continuation from 1e-2 down
  bool timestepBackoff = true; ///< transient step subdivision
  bool sourceStepping = true;  ///< DC source homotopy from 0 to full value
  /// Total escalations (gmin ladders started, step subdivision rounds,
  /// source ladders started) permitted before the solve is abandoned with
  /// BudgetExhausted. Deterministic.
  int retryBudget = 64;
  /// Wall-clock deadline for the whole analysis in seconds; 0 disables.
  /// NOT deterministic — leave off when bit-identical reruns matter.
  double deadlineSeconds = 0.0;
  /// Cooperative cancellation, polled once per Newton iteration. When the
  /// token fires the solve stops at the next iteration boundary with
  /// SolveStatus::Cancelled. Not owned; must outlive the analysis. Like the
  /// deadline, cancellation makes outcomes wall-clock dependent.
  const CancelToken* cancel = nullptr;
};

/// Outcome + diagnostics of one analysis (DC or full transient).
struct SolveReport {
  SolveStatus status = SolveStatus::Converged;
  RecoveryStage deepestStage = RecoveryStage::Direct; ///< worst rung needed
  std::string worstNode;   ///< unknown with the worst scaled update at the end
  double worstDelta = 0.0; ///< its last |dx| [V or A]
  long iterations = 0;     ///< Newton iterations consumed in total
  int gminSteps = 0;       ///< gmin continuation levels solved
  int sourceSteps = 0;     ///< source-stepping levels solved
  int subdivisions = 0;    ///< transient steps that needed subdivision
  int retriesUsed = 0;     ///< recovery escalations charged to the budget
  double failTime = 0.0;   ///< transient time of the failing step [s]
  std::string message;     ///< one-line human-readable summary

  bool ok() const { return status == SolveStatus::Converged; }
};

/// A converged solution: node voltages + branch currents at one time point.
class Solution {
public:
  Solution() = default;
  Solution(std::vector<double> x, std::size_t numNodes)
      : x_(std::move(x)), numNodes_(numNodes) {}

  double v(NodeId node) const {
    if (node == kGround) return 0.0;
    return x_[static_cast<std::size_t>(node - 1)];
  }
  double branch_current(std::size_t branchIndex) const {
    return x_[numNodes_ + branchIndex];
  }
  const std::vector<double>& raw() const { return x_; }
  std::size_t num_nodes() const { return numNodes_; }

  /// SimState view of this solution (iterate == previous == this).
  SimState as_state(double time = 0.0) const {
    SimState s;
    s.time = time;
    s.numNodes = numNodes_;
    s.iterate = &x_;
    s.previous = &x_;
    return s;
  }

private:
  std::vector<double> x_;
  std::size_t numNodes_ = 0;
};

/// Runs analyses over a Circuit. The circuit must outlive the simulator and
/// must not gain nodes/devices between analyses.
///
/// Two construction modes:
///  * `Simulator(circuit)` compiles the circuit and owns a private
///    workspace — the original API, one-shot friendly.
///  * `Simulator(compiled, workspace)` runs on caller-owned state, the
///    run-many path: campaigns compile each deck once per worker thread and
///    re-run analyses against pooled workspaces, patching device parameters
///    between trials instead of rebuilding the deck.
/// Both modes produce bit-identical results.
class Simulator {
public:
  explicit Simulator(const Circuit& circuit);
  Simulator(const CompiledCircuit& compiled, SimWorkspace& workspace);

  /// Observer invoked after the initial operating point (t = 0) and after
  /// every converged major step.
  using Observer = std::function<void(double time, const Solution& solution)>;

  // --- result layer (never throws on solver trouble) -----------------------

  /// DC operating point. On success `out` holds the solution; on failure it
  /// is left untouched and the report classifies why.
  SolveReport solve_dc(Solution& out, const NewtonOptions& options = {},
                       const RecoveryOptions& recovery = {});

  /// Transient from a DC operating point at the t=0 source values.
  SolveReport run_transient(const TransientOptions& options, const Observer& observer,
                            const RecoveryOptions& recovery = {});

  /// Transient from a caller-provided initial condition.
  SolveReport run_transient_from(const Solution& initial,
                                 const TransientOptions& options,
                                 const Observer& observer,
                                 const RecoveryOptions& recovery = {});

  // --- throwing shims (legacy API) -----------------------------------------

  /// DC operating point with recovery; throws ConvergenceError on failure.
  Solution dc_operating_point(const NewtonOptions& options = {});

  /// Transient; throws ConvergenceError when a step cannot be rescued.
  void transient(const TransientOptions& options, const Observer& observer);

  /// Transient from a caller-provided initial condition (throws).
  void transient_from(const Solution& initial, const TransientOptions& options,
                      const Observer& observer);

  /// Statistics of the most recent analysis (for tests and tuning).
  struct Stats {
    long totalNewtonIterations = 0;
    long totalSteps = 0;
    long subdividedSteps = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Report of the most recent analysis (also returned by the result layer).
  const SolveReport& last_report() const { return report_; }

private:
  /// Outcome of one raw Newton solve.
  struct NewtonOutcome {
    bool converged = false;
    SolveStatus failure = SolveStatus::Converged; ///< set when !converged
    int iterations = 0;
    std::size_t worstUnknown = 0; ///< unknown with the worst scaled update
    double worstDelta = 0.0;
  };

  /// One Newton solve; leaves the result in x on convergence.
  NewtonOutcome newton_solve(std::vector<double>& x, const SimState& stateTemplate,
                             const NewtonOptions& options);

  /// DC solve with the full ladder; shared by solve_dc and run_transient.
  SolveStatus dc_with_recovery(std::vector<double>& x, const NewtonOptions& options,
                               const RecoveryOptions& recovery);

  /// Renders the name of unknown index i ("node" or "I(source)").
  std::string unknown_name(std::size_t index) const;

  /// Records failure diagnostics from a Newton outcome into report_.
  void note_failure(const NewtonOutcome& outcome);

  /// Refreshes the linear-stamp tape for one Newton solve (records every
  /// linear device's contributions under `base`, which must carry the
  /// solve's time/dt/transient/sourceScale/previous).
  void refresh_tape(const SimState& base);

  const CompiledCircuit* compiled_;
  SimWorkspace* ws_;
  /// Set only by the compile-on-construction ctor.
  std::unique_ptr<CompiledCircuit> ownedCompiled_;
  std::unique_ptr<SimWorkspace> ownedWs_;
  Stats stats_;
  SolveReport report_;
  /// Active cancellation token for the analysis in flight (not owned).
  const CancelToken* cancel_ = nullptr;
};

} // namespace nvff::spice
