#include "spice/devices.hpp"

#include <stdexcept>

namespace nvff::spice {

Resistor::Resistor(std::string name, NodeId a, NodeId b, double resistance)
    : Device(std::move(name)), a_(a), b_(b), resistance_(resistance) {
  if (resistance <= 0.0) throw std::invalid_argument("Resistor: R must be > 0");
}

void Resistor::stamp(Stamper& stamper, const SimState&) {
  stamper.conductance(a_, b_, 1.0 / resistance_);
}

double Resistor::current(const SimState& state) const {
  return (state.v(a_) - state.v(b_)) / resistance_;
}

Capacitor::Capacitor(std::string name, NodeId a, NodeId b, double capacitance)
    : Device(std::move(name)), a_(a), b_(b), capacitance_(capacitance) {
  if (capacitance < 0.0) throw std::invalid_argument("Capacitor: C must be >= 0");
}

void Capacitor::stamp(Stamper& stamper, const SimState& state) {
  if (!state.transient || state.dt <= 0.0) {
    // DC: open circuit. A tiny conductance keeps floating internal nodes from
    // making the matrix singular without disturbing the solution.
    stamper.conductance(a_, b_, 1e-12);
    return;
  }
  // Backward Euler companion: i = C/dt * (v - v_prev)
  // -> conductance geq = C/dt in parallel with a current source
  //    ieq = C/dt * v_prev flowing b->a (charging history).
  const double geq = capacitance_ / state.dt;
  const double vPrev = state.v_prev(a_) - state.v_prev(b_);
  stamper.conductance(a_, b_, geq);
  stamper.current(b_, a_, geq * vPrev);
}

double Capacitor::energy(const SimState& state) const {
  const double v = state.v(a_) - state.v(b_);
  return 0.5 * capacitance_ * v * v;
}

VoltageSource::VoltageSource(std::string name, NodeId plus, NodeId minus,
                             Waveform waveform, std::size_t branchIndex)
    : Device(std::move(name)),
      plus_(plus),
      minus_(minus),
      waveform_(std::move(waveform)),
      branchIndex_(branchIndex) {}

void VoltageSource::stamp(Stamper& stamper, const SimState& state) {
  stamper.branch_voltage(branchIndex_, plus_, minus_,
                         state.sourceScale * waveform_.value(state.time));
}

double VoltageSource::delivered_current(const SimState& state) const {
  // The branch unknown is the current flowing into the + terminal; the
  // current delivered to the circuit is its negative.
  return -state.branch(branchIndex_);
}

CurrentSource::CurrentSource(std::string name, NodeId from, NodeId to, Waveform waveform)
    : Device(std::move(name)), from_(from), to_(to), waveform_(std::move(waveform)) {}

void CurrentSource::stamp(Stamper& stamper, const SimState& state) {
  stamper.current(from_, to_, state.sourceScale * waveform_.value(state.time));
}

} // namespace nvff::spice
