// Source waveforms: DC, pulse trains, and piecewise-linear sequences.
//
// Control signals of the latch (clock, PD, R_en, PC, SEL, ...) are described
// as PWL waveforms assembled by the sequencers in src/cell/. Pulse gives the
// familiar SPICE PULSE() source for clocks.
#pragma once

#include <utility>
#include <vector>

namespace nvff::spice {

/// Piecewise-linear waveform; between points the value is linearly
/// interpolated, before the first and after the last it is held constant.
class Pwl {
public:
  Pwl() = default;

  /// Appends a (time, value) point; times must be non-decreasing.
  void add_point(double time, double value);

  /// Appends a step: hold the previous value until `time`, then ramp to
  /// `value` over `rampTime`. Convenient for digital control sequences.
  void add_step(double time, double value, double rampTime);

  double value(double time) const;
  bool empty() const { return points_.empty(); }
  double last_time() const { return points_.empty() ? 0.0 : points_.back().first; }
  const std::vector<std::pair<double, double>>& points() const { return points_; }

private:
  std::vector<std::pair<double, double>> points_;
};

/// Any source waveform: constant, SPICE-style pulse, or PWL.
class Waveform {
public:
  /// Constant value for all time.
  static Waveform dc(double value);

  /// SPICE PULSE(v1 v2 delay rise fall width period).
  static Waveform pulse(double v1, double v2, double delay, double rise, double fall,
                        double width, double period);

  /// Piecewise linear.
  static Waveform pwl(Pwl pwl);

  double value(double time) const;

  /// True for a constant (DC) waveform (value(t) == value(0) for all t).
  bool is_dc() const { return kind_ == Kind::Dc; }

  /// Largest time at which the waveform still changes (used to pick the
  /// transient window); 0 for DC.
  double active_until() const;

private:
  enum class Kind { Dc, Pulse, PwlKind };
  Kind kind_ = Kind::Dc;
  double dc_ = 0.0;
  // pulse parameters
  double v1_ = 0.0, v2_ = 0.0, delay_ = 0.0, rise_ = 0.0, fall_ = 0.0, width_ = 0.0,
         period_ = 0.0;
  Pwl pwl_;
};

} // namespace nvff::spice
