#include "spice/trace.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace nvff::spice {

void Trace::watch_node(const Circuit& circuit, const std::string& nodeName) {
  const NodeId node = circuit.find_node(nodeName);
  if (node == kInvalidNode) {
    throw std::invalid_argument("Trace: unknown node " + nodeName);
  }
  nodeProbes_.push_back(NodeProbe{nodeName, node});
  data_.emplace_back();
}

void Trace::watch_source_current(const Circuit& circuit, const std::string& sourceName) {
  const auto* dev = dynamic_cast<const VoltageSource*>(circuit.find_device(sourceName));
  if (dev == nullptr) {
    throw std::invalid_argument("Trace: unknown voltage source " + sourceName);
  }
  // Branch unknown is the current into the + terminal; report the delivered
  // current (out of + into the circuit) instead, which is what users expect.
  sourceProbes_.push_back(SourceProbe{sourceName + ".i", dev->branch_index(), -1.0});
  data_.emplace_back();
}

Simulator::Observer Trace::observer() {
  return [this](double time, const Solution& solution) {
    times_.push_back(time);
    std::size_t column = 0;
    for (const auto& probe : nodeProbes_) {
      data_[column++].push_back(solution.v(probe.node));
    }
    for (const auto& probe : sourceProbes_) {
      data_[column++].push_back(probe.sign *
                                solution.branch_current(probe.branchIndex));
    }
  };
}

std::size_t Trace::index_of(const std::string& name) const {
  std::size_t column = 0;
  for (const auto& probe : nodeProbes_) {
    if (probe.label == name) return column;
    ++column;
  }
  for (const auto& probe : sourceProbes_) {
    if (probe.label == name) return column;
    ++column;
  }
  throw std::invalid_argument("Trace: unknown signal " + name);
}

const std::vector<double>& Trace::samples(const std::string& name) const {
  return data_[index_of(name)];
}

bool Trace::has(const std::string& name) const {
  for (const auto& probe : nodeProbes_) {
    if (probe.label == name) return true;
  }
  for (const auto& probe : sourceProbes_) {
    if (probe.label == name) return true;
  }
  return false;
}

std::vector<std::string> Trace::signal_names() const {
  std::vector<std::string> names;
  for (const auto& probe : nodeProbes_) names.push_back(probe.label);
  for (const auto& probe : sourceProbes_) names.push_back(probe.label);
  return names;
}

double Trace::value_at(const std::string& name, double t) const {
  const auto& ys = samples(name);
  if (ys.empty()) return 0.0;
  if (t <= times_.front()) return ys.front();
  if (t >= times_.back()) return ys.back();
  const auto it = std::lower_bound(times_.begin(), times_.end(), t);
  const auto hi = static_cast<std::size_t>(it - times_.begin());
  if (hi == 0) return ys.front();
  const double t0 = times_[hi - 1];
  const double t1 = times_[hi];
  if (t1 <= t0) return ys[hi];
  const double frac = (t - t0) / (t1 - t0);
  return ys[hi - 1] * (1.0 - frac) + ys[hi] * frac;
}

std::optional<double> Trace::crossing_time(const std::string& name, double threshold,
                                           Edge edge, double tStart) const {
  const auto& ys = samples(name);
  for (std::size_t i = 1; i < ys.size(); ++i) {
    if (times_[i] < tStart) continue;
    const double y0 = ys[i - 1];
    const double y1 = ys[i];
    const bool rising = y0 < threshold && y1 >= threshold;
    const bool falling = y0 > threshold && y1 <= threshold;
    const bool match = (edge == Edge::Rising && rising) ||
                       (edge == Edge::Falling && falling) ||
                       (edge == Edge::Either && (rising || falling));
    if (!match) continue;
    const double dy = y1 - y0;
    const double frac = (dy == 0.0) ? 0.0 : (threshold - y0) / dy;
    return times_[i - 1] + frac * (times_[i] - times_[i - 1]);
  }
  return std::nullopt;
}

double Trace::final_value(const std::string& name) const {
  const auto& ys = samples(name);
  return ys.empty() ? 0.0 : ys.back();
}

double Trace::min_value(const std::string& name, double tStart) const {
  const auto& ys = samples(name);
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < ys.size(); ++i) {
    if (times_[i] >= tStart) best = std::min(best, ys[i]);
  }
  return std::isfinite(best) ? best : 0.0;
}

double Trace::max_value(const std::string& name, double tStart) const {
  const auto& ys = samples(name);
  double best = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < ys.size(); ++i) {
    if (times_[i] >= tStart) best = std::max(best, ys[i]);
  }
  return std::isfinite(best) ? best : 0.0;
}

double Trace::integral(const std::string& name, double t0, double t1) const {
  const auto& ys = samples(name);
  double acc = 0.0;
  for (std::size_t i = 1; i < ys.size(); ++i) {
    const double ta = std::max(times_[i - 1], t0);
    const double tb = std::min(times_[i], t1);
    if (tb <= ta) continue;
    // Interpolate the endpoints of the clipped interval.
    const double span = times_[i] - times_[i - 1];
    auto lerp = [&](double t) {
      if (span <= 0.0) return ys[i];
      const double frac = (t - times_[i - 1]) / span;
      return ys[i - 1] * (1.0 - frac) + ys[i] * frac;
    };
    acc += 0.5 * (lerp(ta) + lerp(tb)) * (tb - ta);
  }
  return acc;
}

int Trace::count_transitions(const std::string& name, double swing) const {
  const auto& ys = samples(name);
  if (ys.empty()) return 0;
  const double hi = 0.6 * swing;
  const double lo = 0.4 * swing;
  int transitions = 0;
  bool state = ys.front() > 0.5 * swing;
  for (double y : ys) {
    if (state && y < lo) {
      state = false;
      ++transitions;
    } else if (!state && y > hi) {
      state = true;
      ++transitions;
    }
  }
  return transitions;
}

std::string Trace::to_csv() const {
  std::ostringstream out;
  out << "time";
  for (const auto& probe : nodeProbes_) out << ',' << probe.label;
  for (const auto& probe : sourceProbes_) out << ',' << probe.label;
  out << '\n';
  for (std::size_t i = 0; i < times_.size(); ++i) {
    out << times_[i];
    for (const auto& column : data_) out << ',' << column[i];
    out << '\n';
  }
  return out.str();
}

std::string Trace::ascii_waves(const std::vector<std::string>& names,
                               std::size_t columns, double vHigh) const {
  std::ostringstream out;
  if (times_.empty() || columns == 0) return "(no samples)\n";
  const double t0 = times_.front();
  const double t1 = times_.back();
  std::size_t width = 0;
  for (const auto& n : names) width = std::max(width, n.size());
  for (const auto& name : names) {
    out << name << std::string(width - name.size(), ' ') << " |";
    for (std::size_t c = 0; c < columns; ++c) {
      const double t = t0 + (t1 - t0) * (static_cast<double>(c) + 0.5) /
                                static_cast<double>(columns);
      const double v = value_at(name, t);
      char glyph = '-';
      if (v > 0.75 * vHigh) glyph = '#';
      else if (v > 0.5 * vHigh) glyph = '+';
      else if (v > 0.25 * vHigh) glyph = '.';
      else glyph = '_';
      out << glyph;
    }
    out << "|\n";
  }
  out << std::string(width, ' ') << " t=" << t0 << " .. " << t1 << " s\n";
  return out.str();
}

SupplyEnergyMeter::SupplyEnergyMeter(const Circuit& circuit,
                                     const std::string& sourceName) {
  source_ = dynamic_cast<const VoltageSource*>(circuit.find_device(sourceName));
  if (source_ == nullptr) {
    throw std::invalid_argument("SupplyEnergyMeter: unknown source " + sourceName);
  }
}

void SupplyEnergyMeter::observe(double time, const Solution& solution) {
  // The branch unknown is the current into the + terminal, so the power the
  // source delivers to the circuit is -V * I_branch.
  const double v = source_->value(time);
  const double i = solution.branch_current(source_->branch_index());
  const double power = -v * i;
  if (!first_) {
    energy_ += 0.5 * (power + lastPower_) * (time - lastTime_);
  }
  first_ = false;
  lastTime_ = time;
  lastPower_ = power;
}

void SupplyEnergyMeter::reset() {
  energy_ = 0.0;
  markedEnergy_ = 0.0;
  first_ = true;
}

} // namespace nvff::spice
