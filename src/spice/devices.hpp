// Linear devices and independent sources.
#pragma once

#include "spice/device.hpp"
#include "spice/waveform.hpp"

namespace nvff::spice {

/// Ideal linear resistor.
class Resistor : public Device {
public:
  Resistor(std::string name, NodeId a, NodeId b, double resistance);

  void stamp(Stamper& stamper, const SimState& state) override;

  double resistance() const { return resistance_; }
  NodeId node_a() const { return a_; }
  NodeId node_b() const { return b_; }
  /// Current from a to b given a converged solution state.
  double current(const SimState& state) const;

private:
  NodeId a_;
  NodeId b_;
  double resistance_;
};

/// Linear capacitor, discretized with the backward-Euler companion model
/// (trapezoidal optional via Circuit-level integration setting in the
/// simulator; BE is the robust default for strongly nonlinear latches).
class Capacitor : public Device {
public:
  Capacitor(std::string name, NodeId a, NodeId b, double capacitance);

  void stamp(Stamper& stamper, const SimState& state) override;

  double capacitance() const { return capacitance_; }
  NodeId node_a() const { return a_; }
  NodeId node_b() const { return b_; }
  /// Stored energy 0.5 C V^2 at the current iterate.
  double energy(const SimState& state) const;

private:
  NodeId a_;
  NodeId b_;
  double capacitance_;
};

/// Ideal independent voltage source with a branch-current unknown.
class VoltageSource : public Device {
public:
  VoltageSource(std::string name, NodeId plus, NodeId minus, Waveform waveform,
                std::size_t branchIndex);

  void stamp(Stamper& stamper, const SimState& state) override;

  std::size_t branch_index() const { return branchIndex_; }
  /// Source value at time t.
  double value(double time) const { return waveform_.value(time); }
  /// Current drawn out of the + terminal through the external circuit,
  /// i.e. the power delivered by the source is value(t) * current(state).
  double delivered_current(const SimState& state) const;
  const Waveform& waveform() const { return waveform_; }
  void set_waveform(Waveform waveform) { waveform_ = std::move(waveform); }
  NodeId plus() const { return plus_; }
  NodeId minus() const { return minus_; }

private:
  NodeId plus_;
  NodeId minus_;
  Waveform waveform_;
  std::size_t branchIndex_;
};

/// Ideal independent current source (current flows from `from` node through
/// the source to `to` node).
class CurrentSource : public Device {
public:
  CurrentSource(std::string name, NodeId from, NodeId to, Waveform waveform);

  void stamp(Stamper& stamper, const SimState& state) override;

  NodeId from() const { return from_; }
  NodeId to() const { return to_; }
  const Waveform& waveform() const { return waveform_; }

private:
  NodeId from_;
  NodeId to_;
  Waveform waveform_;
};

} // namespace nvff::spice
