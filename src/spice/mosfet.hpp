// Compact MOSFET model for the MNA engine.
//
// This is an EKV-flavoured long-channel model: a single smooth interpolation
// function covers weak inversion (exponential subthreshold conduction — the
// source of the leakage numbers in Table II) and strong inversion (square
// law), with a channel-length-modulation term for finite output conductance.
// The model is bulk-referenced and drain/source symmetric, which matters for
// transmission gates and the sense amplifier where terminals swap roles.
//
// It is not a TSMC 40 nm PDK replacement; it is calibrated so that an
// inverter built from it has 40 nm LP-class drive current, switching energy
// and off-state leakage, which is what the paper's relative comparisons need
// (see DESIGN.md, substitution table).
#pragma once

#include "spice/device.hpp"

namespace nvff::spice {

enum class MosType { Nmos, Pmos };

/// Global process corner for the CMOS devices. Worst/best per-metric mapping
/// is done by the characterization driver in src/core/.
enum class CmosCorner { SlowSlow, Typical, FastFast };

/// Electrical parameters of one device type at one corner.
struct MosParams {
  double vth = 0.37;       ///< threshold magnitude [V]
  double kp = 2.0e-4;      ///< transconductance factor mu*Cox [A/V^2]
  double n = 1.35;         ///< subthreshold slope factor
  double lambda = 0.15;    ///< channel-length modulation [1/V]
  double tempK = 300.15;   ///< device temperature (27 C default)
  double coxArea = 1.4e-2; ///< gate oxide capacitance per area [F/m^2]
  double covPerW = 3.0e-10; ///< overlap capacitance per width [F/m]
  double cjPerW = 3.0e-10;  ///< junction capacitance per width [F/m]

  /// Nominal NMOS parameters for the synthetic 40 nm LP process.
  static MosParams nmos_40nm_lp();
  /// Nominal PMOS parameters for the synthetic 40 nm LP process.
  static MosParams pmos_40nm_lp();

  /// Returns a copy shifted to `corner`. FastFast lowers Vth and raises kp
  /// (fast, leaky); SlowSlow does the opposite.
  MosParams at_corner(CmosCorner corner) const;
};

/// Physical geometry of one transistor.
struct MosGeometry {
  double w = 120e-9; ///< channel width [m]
  double l = 40e-9;  ///< channel length [m]
};

/// Four-terminal MOSFET (drain, gate, source, bulk).
///
/// Only the channel current is modelled here; the Circuit factory adds the
/// gate/junction capacitances as separate linear Capacitor devices so the
/// Newton iteration sees a purely resistive nonlinearity.
class Mosfet : public Device {
public:
  Mosfet(std::string name, MosType type, NodeId drain, NodeId gate, NodeId source,
         NodeId bulk, MosGeometry geometry, MosParams params);

  void stamp(Stamper& stamper, const SimState& state) override;
  bool is_nonlinear() const override { return true; }

  /// Channel current, positive from drain terminal to source terminal,
  /// evaluated at the given solver state.
  double ids(const SimState& state) const;

  MosType type() const { return type_; }
  const MosGeometry& geometry() const { return geometry_; }
  const MosParams& params() const { return params_; }
  /// Replaces the electrical parameters in place (the deck patch() API:
  /// campaigns move a compiled deck to a new corner / mismatch draw without
  /// rebuilding it). The parasitic capacitors the Circuit factory derived at
  /// creation time are NOT re-derived; corners and Vth mismatch never touch
  /// the capacitance parameters, so they stay valid.
  void set_params(const MosParams& params) { params_ = params; }
  NodeId drain() const { return drain_; }
  NodeId gate() const { return gate_; }
  NodeId source() const { return source_; }
  NodeId bulk() const { return bulk_; }

  /// Total gate capacitance (for the factory that creates the cap devices).
  double cgs() const;
  double cgd() const;
  double cdb() const;
  double csb() const;

private:
  struct Evaluation {
    double ids;   // drain->source current
    double dVg;   // partial derivatives wrt real terminal voltages
    double dVd;
    double dVs;
    double dVb;
  };
  Evaluation evaluate(double vd, double vg, double vs, double vb) const;

  MosType type_;
  NodeId drain_;
  NodeId gate_;
  NodeId source_;
  NodeId bulk_;
  MosGeometry geometry_;
  MosParams params_;
};

} // namespace nvff::spice
