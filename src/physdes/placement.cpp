#include "physdes/placement.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace nvff::physdes {

using bench::GateId;
using bench::GateType;
using bench::Netlist;

double cell_width(const Netlist& netlist, GateId id, const cell::CmosCellLibrary& lib) {
  const auto& g = netlist.gate(id);
  double area = 0.0;
  switch (g.type) {
    case GateType::Input: return 0.0; // pads live on the boundary, not in rows
    case GateType::Dff: return lib.ffWidth;
    case GateType::Buf: area = lib.bufArea; break;
    case GateType::Not: area = lib.inverterArea; break;
    case GateType::And: area = lib.and2Area; break;
    case GateType::Nand: area = lib.nand2Area; break;
    case GateType::Or: area = lib.or2Area; break;
    case GateType::Nor: area = lib.nor2Area; break;
    case GateType::Xor:
    case GateType::Xnor: area = lib.xor2Area; break;
  }
  // Multi-input gates scale like stacked 2-input stages.
  if (g.fanin.size() > 2) {
    area *= 1.0 + 0.45 * static_cast<double>(g.fanin.size() - 2);
  }
  return area / lib.rowHeight;
}

namespace {

/// Sparse symmetric matrix-free CG for the placement Laplacian.
/// L = D - A over movable vertices; fixed vertices contribute to rhs.
class LaplacianSystem {
public:
  LaplacianSystem(std::size_t n) : diag_(n, 0.0), adj_(n) {}

  void add_edge(std::size_t a, std::size_t b, double w) {
    diag_[a] += w;
    diag_[b] += w;
    adj_[a].push_back({b, w});
    adj_[b].push_back({a, w});
  }
  void add_fixed_edge(std::size_t movable, double fixedCoord, double w,
                      std::vector<double>& rhs) {
    diag_[movable] += w;
    rhs[movable] += w * fixedCoord;
  }
  void add_tether(std::size_t v, double center, double w, std::vector<double>& rhs) {
    diag_[v] += w;
    rhs[v] += w * center;
  }

  void multiply(const std::vector<double>& x, std::vector<double>& y) const {
    const std::size_t n = diag_.size();
    for (std::size_t i = 0; i < n; ++i) {
      double acc = diag_[i] * x[i];
      for (const auto& [j, w] : adj_[i]) acc -= w * x[j];
      y[i] = acc;
    }
  }

  /// Jacobi-preconditioned CG.
  void solve(const std::vector<double>& rhs, std::vector<double>& x, int maxIter,
             double tol) const {
    const std::size_t n = diag_.size();
    std::vector<double> r(n), z(n), p(n), ap(n);
    multiply(x, ap);
    for (std::size_t i = 0; i < n; ++i) r[i] = rhs[i] - ap[i];
    auto precond = [&](const std::vector<double>& in, std::vector<double>& out) {
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = (diag_[i] > 0) ? in[i] / diag_[i] : in[i];
      }
    };
    precond(r, z);
    p = z;
    double rz = std::inner_product(r.begin(), r.end(), z.begin(), 0.0);
    const double rhsNorm =
        std::sqrt(std::inner_product(rhs.begin(), rhs.end(), rhs.begin(), 0.0)) + 1e-30;
    for (int iter = 0; iter < maxIter; ++iter) {
      multiply(p, ap);
      const double pap = std::inner_product(p.begin(), p.end(), ap.begin(), 0.0);
      if (pap <= 0.0) break;
      const double alpha = rz / pap;
      for (std::size_t i = 0; i < n; ++i) {
        x[i] += alpha * p[i];
        r[i] -= alpha * ap[i];
      }
      const double rNorm =
          std::sqrt(std::inner_product(r.begin(), r.end(), r.begin(), 0.0));
      if (rNorm / rhsNorm < tol) break;
      precond(r, z);
      const double rzNew = std::inner_product(r.begin(), r.end(), z.begin(), 0.0);
      const double beta = rzNew / rz;
      rz = rzNew;
      for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    }
  }

private:
  std::vector<double> diag_;
  std::vector<std::vector<std::pair<std::size_t, double>>> adj_;
};

} // namespace

double Placement::hpwl(const Netlist& netlist) const {
  double total = 0.0;
  for (std::size_t i = 0; i < netlist.size(); ++i) {
    const auto id = static_cast<GateId>(i);
    for (GateId f : netlist.gate(id).fanin) {
      total += std::fabs(cx(id) - cx(f)) + std::fabs(cy(id) - cy(f));
    }
  }
  return total;
}

double Placement::utilization() const {
  double used = 0.0;
  for (const auto& c : cells) {
    if (!c.fixedPad) used += c.width * rowHeight;
  }
  const double avail = dieWidth * dieHeight;
  return avail > 0 ? used / avail : 0.0;
}

Placement place(const Netlist& netlist, const cell::CmosCellLibrary& lib,
                const PlacerOptions& options) {
  if (!netlist.finalized()) {
    throw std::invalid_argument("place: netlist must be finalized");
  }
  const std::size_t n = netlist.size();

  Placement result;
  result.designName = netlist.name();
  result.rowHeight = lib.rowHeight;
  result.cells.resize(n);

  // --- floorplan -------------------------------------------------------------
  double totalArea = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<GateId>(i);
    result.cells[i].gate = id;
    result.cells[i].width = cell_width(netlist, id, lib);
    totalArea += result.cells[i].width * lib.rowHeight;
  }
  const double dieArea = totalArea / options.utilization;
  double side = std::sqrt(std::max(dieArea, lib.rowHeight * lib.rowHeight));
  int numRows = std::max(1, static_cast<int>(std::ceil(side / lib.rowHeight)));
  result.numRows = numRows;
  result.dieHeight = numRows * lib.rowHeight;
  result.dieWidth = std::max(dieArea / result.dieHeight, lib.rowHeight);

  // --- fixed boundary pads for primary IOs ------------------------------------
  // Pads are spread uniformly around the perimeter in id order.
  std::vector<char> isPad(n, 0);
  {
    std::vector<GateId> ios = netlist.inputs();
    for (GateId o : netlist.outputs()) ios.push_back(o);
    // Outputs are real gates; only INPUT gates are pure pads, but both act
    // as boundary anchors the way IO pins do after floorplanning. Inputs are
    // pinned; output-driving gates just get an extra boundary pull.
    const std::size_t numAnchors = ios.size();
    const double perimeter = 2.0 * (result.dieWidth + result.dieHeight);
    for (std::size_t k = 0; k < numAnchors; ++k) {
      const GateId id = ios[k];
      const double s = perimeter * static_cast<double>(k) /
                       std::max<std::size_t>(1, numAnchors);
      double px = 0.0;
      double py = 0.0;
      if (s < result.dieWidth) {
        px = s;
        py = 0.0;
      } else if (s < result.dieWidth + result.dieHeight) {
        px = result.dieWidth;
        py = s - result.dieWidth;
      } else if (s < 2.0 * result.dieWidth + result.dieHeight) {
        px = s - result.dieWidth - result.dieHeight;
        py = result.dieHeight;
      } else {
        px = 0.0;
        py = s - 2.0 * result.dieWidth - result.dieHeight;
      }
      if (netlist.gate(id).type == GateType::Input) {
        auto& c = result.cells[static_cast<std::size_t>(id)];
        c.x = px;
        c.y = py;
        c.fixedPad = true;
        isPad[static_cast<std::size_t>(id)] = 1;
      }
    }
  }

  // --- quadratic global placement ---------------------------------------------
  LaplacianSystem sysX(n);
  std::vector<double> rhsX(n, 0.0);
  std::vector<double> rhsY(n, 0.0);
  // Single system: the Laplacian is identical for x and y (only rhs differ),
  // but fixed-edge terms add to the diagonal, also identical. So one matrix,
  // two rhs/solves.
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<GateId>(i);
    for (GateId f : netlist.gate(id).fanin) {
      const auto fi = static_cast<std::size_t>(f);
      const bool iPad = isPad[i] != 0;
      const bool fPad = isPad[fi] != 0;
      if (iPad && fPad) continue;
      if (iPad) {
        sysX.add_fixed_edge(fi, result.cells[i].x, 1.0, rhsX);
        // y handled with the same diagonal; add rhs only.
        rhsY[fi] += 1.0 * result.cells[i].y;
      } else if (fPad) {
        sysX.add_fixed_edge(i, result.cells[fi].x, 1.0, rhsX);
        rhsY[i] += 1.0 * result.cells[fi].y;
      } else {
        sysX.add_edge(i, fi, 1.0);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (isPad[i]) continue;
    sysX.add_tether(i, result.dieWidth / 2.0, options.centerTether, rhsX);
    rhsY[i] += options.centerTether * result.dieHeight / 2.0;
  }

  std::vector<double> x(n, result.dieWidth / 2.0);
  std::vector<double> y(n, result.dieHeight / 2.0);
  sysX.solve(rhsX, x, options.cgMaxIterations, options.cgTolerance);
  sysX.solve(rhsY, y, options.cgMaxIterations, options.cgTolerance);

  // Deterministic tie-break jitter so identical coordinates legalize stably.
  Rng rng(options.seed);
  for (std::size_t i = 0; i < n; ++i) {
    if (isPad[i]) continue;
    x[i] += rng.uniform(-1e-4, 1e-4);
    y[i] += rng.uniform(-1e-4, 1e-4);
  }

  // --- legalization: row assignment by y-order, in-row packing by x-order ----
  std::vector<std::size_t> movable;
  for (std::size_t i = 0; i < n; ++i) {
    if (!isPad[i]) movable.push_back(i);
  }
  std::sort(movable.begin(), movable.end(),
            [&](std::size_t a, std::size_t b) { return y[a] < y[b]; });

  // Distribute cells to rows proportionally to width so every row fits.
  const double totalWidth =
      std::accumulate(movable.begin(), movable.end(), 0.0,
                      [&](double acc, std::size_t i) { return acc + result.cells[i].width; });
  const double widthPerRow = totalWidth / numRows;

  std::size_t cursor = 0;
  for (int row = 0; row < numRows && cursor < movable.size(); ++row) {
    // Collect this row's cells by cumulative width.
    std::vector<std::size_t> rowCells;
    double acc = 0.0;
    while (cursor < movable.size() &&
           (acc < widthPerRow || row == numRows - 1)) {
      rowCells.push_back(movable[cursor]);
      acc += result.cells[movable[cursor]].width;
      ++cursor;
    }
    std::sort(rowCells.begin(), rowCells.end(),
              [&](std::size_t a, std::size_t b) { return x[a] < x[b]; });
    // Pack left-to-right with uniform extra spacing.
    double rowWidth = 0.0;
    for (std::size_t i : rowCells) rowWidth += result.cells[i].width;
    const double slack = std::max(0.0, result.dieWidth - rowWidth);
    const double gap =
        rowCells.size() > 0 ? slack / static_cast<double>(rowCells.size() + 1) : 0.0;
    double pen = gap;
    for (std::size_t i : rowCells) {
      auto& c = result.cells[i];
      c.x = pen;
      c.y = row * lib.rowHeight;
      c.row = row;
      pen += c.width + gap;
    }
  }

  log_debug(format("place(%s): %zu cells, die %.1f x %.1f um, hpwl %.0f um",
                   netlist.name().c_str(), n, result.dieWidth, result.dieHeight,
                   result.hpwl(netlist)));
  return result;
}

} // namespace nvff::physdes
