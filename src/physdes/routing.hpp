// Global routing substrate (the "routing" third of the paper's
// floorplan/placement/routing flow, Sec. IV-A).
//
// Grid-based global router: the die is divided into routing bins (g-cells);
// every fanin edge is routed as an L-shape chosen to minimize congestion
// (the cheaper of the two Ls by current bin load). Outputs: total routed
// wirelength, per-bin utilization, overflow statistics — enough to check
// that replacing FF pairs with multi-bit cells does not wreck (in fact
// slightly relieves) local routing, supporting the paper's claim that the
// merged cells drop into the normal flow.
#pragma once

#include <vector>

#include "bench_circuits/netlist.hpp"
#include "physdes/placement.hpp"

namespace nvff::physdes {

struct RouterOptions {
  double binSizeUm = 5.0; ///< g-cell edge
  /// Routable wire per bin [um]: ~35 tracks/layer at a 0.14 um pitch over a
  /// 5 um g-cell, ~5 signal layers -> ~175 tracks x 5 um ≈ 875 um.
  double capacityPerBin = 875.0;
};

struct RoutingResult {
  int binsX = 0;
  int binsY = 0;
  std::vector<double> usage; ///< row-major [y * binsX + x], um of wire
  double totalWirelengthUm = 0.0;
  int overflowedBins = 0;
  double maxUtilization = 0.0; ///< worst bin usage / capacity
  double capacityPerBin = 0.0;

  double utilization(int x, int y) const {
    return usage[static_cast<std::size_t>(y) * static_cast<std::size_t>(binsX) +
                 static_cast<std::size_t>(x)] /
           capacityPerBin;
  }

  /// ASCII congestion heat map ('.' < 25 %, '-' < 50 %, '+' < 75 %,
  /// '#' < 100 %, '!' overflow).
  std::string congestion_map() const;
};

/// Routes every fanin edge of the placed netlist.
RoutingResult route(const bench::Netlist& netlist, const Placement& placement,
                    const RouterOptions& options = {});

} // namespace nvff::physdes
