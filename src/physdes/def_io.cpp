#include "physdes/def_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace nvff::physdes {
namespace {
constexpr double kDbuPerMicron = 1000.0;

long to_dbu(double um) { return std::lround(um * kDbuPerMicron); }
} // namespace

std::string to_def(const Placement& placement, const bench::Netlist& netlist) {
  std::ostringstream out;
  out << "VERSION 5.8 ;\n";
  out << "DESIGN " << placement.designName << " ;\n";
  out << "UNITS DISTANCE MICRONS " << static_cast<long>(kDbuPerMicron) << " ;\n";
  out << "DIEAREA ( 0 0 ) ( " << to_dbu(placement.dieWidth) << " "
      << to_dbu(placement.dieHeight) << " ) ;\n";
  // Count row components (pads excluded: DEF would list them as PINS).
  std::size_t numComponents = 0;
  for (const auto& c : placement.cells) {
    if (!c.fixedPad) ++numComponents;
  }
  out << "COMPONENTS " << numComponents << " ;\n";
  for (const auto& c : placement.cells) {
    if (c.fixedPad) continue;
    const auto& g = netlist.gate(c.gate);
    out << "  - " << g.name << " " << bench::gate_type_name(g.type) << " + PLACED ( "
        << to_dbu(c.x) << " " << to_dbu(c.y) << " ) N ;\n";
  }
  out << "END COMPONENTS\n";
  out << "END DESIGN\n";
  return out.str();
}

void save_def_file(const Placement& placement, const bench::Netlist& netlist,
                   const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write DEF file: " + path);
  out << to_def(placement, netlist);
}

DefDesign parse_def(std::istream& in) {
  DefDesign design;
  std::string line;
  bool inComponents = false;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const auto tokens = split(line, " \t;");
    if (tokens.empty()) continue;
    if (tokens[0] == "DESIGN" && tokens.size() >= 2) {
      design.name = tokens[1];
    } else if (tokens[0] == "DIEAREA" && tokens.size() >= 8) {
      // DIEAREA ( x0 y0 ) ( x1 y1 )
      design.dieWidth = std::stod(tokens[6]) / kDbuPerMicron;
      design.dieHeight = std::stod(tokens[7]) / kDbuPerMicron;
    } else if (tokens[0] == "COMPONENTS") {
      inComponents = true;
    } else if (tokens[0] == "END" && tokens.size() >= 2 &&
               tokens[1] == "COMPONENTS") {
      inComponents = false;
    } else if (inComponents && tokens[0] == "-") {
      // - name cellType + PLACED ( x y ) N
      if (tokens.size() < 9) {
        throw std::runtime_error(
            format("DEF parse error at line %d: short component record", lineNo));
      }
      DefComponent comp;
      comp.name = tokens[1];
      comp.cellType = tokens[2];
      std::size_t k = 3;
      while (k < tokens.size() && tokens[k] != "PLACED" && tokens[k] != "FIXED") ++k;
      if (k + 3 >= tokens.size()) {
        throw std::runtime_error(
            format("DEF parse error at line %d: missing placement", lineNo));
      }
      comp.fixed = tokens[k] == "FIXED";
      comp.x = std::stod(tokens[k + 2]) / kDbuPerMicron;
      comp.y = std::stod(tokens[k + 3]) / kDbuPerMicron;
      design.components.push_back(std::move(comp));
    }
  }
  return design;
}

DefDesign parse_def_string(const std::string& text) {
  std::istringstream in(text);
  return parse_def(in);
}

DefDesign load_def_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open DEF file: " + path);
  return parse_def(in);
}

} // namespace nvff::physdes
