// Static timing analysis over a placed netlist.
//
// The paper picks the pairing threshold "in such a way that there should not
// be any timing penalties" (Sec. IV-C). Merging two flip-flops into one
// multi-bit cell physically moves both to a common site, stretching their
// data wires; this STA quantifies that penalty so the threshold rule can be
// validated instead of assumed (bench_ablation_timing).
//
// Delay model (linear, buffered-wire regime):
//   gate delay  = intrinsic + perFanout * fanout_count
//   wire delay  = perUm * manhattan_distance(driver, sink)
//   launch      = primary inputs at 0, FF outputs at clkToQ
//   capture     = FF D pins and primary outputs against the clock period
#pragma once

#include <vector>

#include "bench_circuits/netlist.hpp"
#include "physdes/placement.hpp"

namespace nvff::physdes {

struct StaOptions {
  double intrinsicPs = 15.0;    ///< per-gate intrinsic delay
  double perFanoutPs = 4.0;     ///< load-dependent delay per fanout
  double wirePsPerUm = 0.9;     ///< buffered-wire delay
  double clkToQPs = 60.0;       ///< FF clock-to-output
  double setupPs = 40.0;        ///< FF setup time
  double clockPeriodPs = 2000.0; ///< 500 MHz
};

struct TimingReport {
  double criticalPathPs = 0.0; ///< worst launch->capture delay (incl. setup)
  double worstSlackPs = 0.0;   ///< clockPeriod - criticalPath
  bench::GateId criticalEndpoint = bench::kNoGate;
  std::vector<bench::GateId> criticalPath; ///< endpoint back to the source
  std::vector<double> arrivalPs;           ///< per gate (signal valid time)
};

/// Full-netlist STA with placement-aware wire delays.
TimingReport analyze_timing(const bench::Netlist& netlist, const Placement& placement,
                            const StaOptions& options = {});

/// Returns a copy of the placement where each merged flip-flop pair sits at
/// the pair's midpoint (the physical effect of replacing two 1-bit cells
/// with one multi-bit cell). `pairs` holds index pairs into
/// netlist.flip_flops().
Placement apply_pair_displacement(const Placement& placement,
                                  const bench::Netlist& netlist,
                                  const std::vector<std::pair<int, int>>& pairs);

} // namespace nvff::physdes
