#include "physdes/routing.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace nvff::physdes {

using bench::GateId;

namespace {

/// Accumulates wire through the bins along a straight horizontal or
/// vertical segment.
class BinGrid {
public:
  BinGrid(RoutingResult& result, double binSize)
      : result_(result), binSize_(binSize) {}

  int clampX(int x) const { return std::clamp(x, 0, result_.binsX - 1); }
  int clampY(int y) const { return std::clamp(y, 0, result_.binsY - 1); }
  int binOf(double coord) const {
    return static_cast<int>(std::floor(coord / binSize_));
  }

  double& at(int x, int y) {
    return result_.usage[static_cast<std::size_t>(clampY(y)) *
                             static_cast<std::size_t>(result_.binsX) +
                         static_cast<std::size_t>(clampX(x))];
  }

  /// Cost of running a segment (peeks at bin loads without committing).
  double segment_cost(double x0, double y0, double x1, double y1) {
    double cost = 0.0;
    walk(x0, y0, x1, y1, [&](int bx, int by, double len) {
      const double load = at(bx, by);
      // Quadratic congestion penalty on top of length.
      cost += len * (1.0 + std::pow(load / 400.0, 2.0));
    });
    return cost;
  }

  void commit(double x0, double y0, double x1, double y1) {
    walk(x0, y0, x1, y1, [&](int bx, int by, double len) { at(bx, by) += len; });
  }

private:
  template <typename Fn>
  void walk(double x0, double y0, double x1, double y1, Fn&& fn) {
    if (std::fabs(x1 - x0) >= std::fabs(y1 - y0)) {
      // Horizontal segment in row bin(y0).
      const int by = binOf(y0);
      const double lo = std::min(x0, x1);
      const double hi = std::max(x0, x1);
      for (int bx = binOf(lo); bx <= binOf(hi); ++bx) {
        const double left = std::max(lo, bx * binSize_);
        const double right = std::min(hi, (bx + 1) * binSize_);
        if (right > left) fn(bx, by, right - left);
      }
    } else {
      const int bx = binOf(x0);
      const double lo = std::min(y0, y1);
      const double hi = std::max(y0, y1);
      for (int by = binOf(lo); by <= binOf(hi); ++by) {
        const double bottom = std::max(lo, by * binSize_);
        const double top = std::min(hi, (by + 1) * binSize_);
        if (top > bottom) fn(bx, by, top - bottom);
      }
    }
  }

  RoutingResult& result_;
  double binSize_;
};

} // namespace

RoutingResult route(const bench::Netlist& netlist, const Placement& placement,
                    const RouterOptions& options) {
  if (!netlist.finalized()) {
    throw std::invalid_argument("route: netlist must be finalized");
  }
  if (placement.cells.size() != netlist.size()) {
    throw std::invalid_argument("route: placement/netlist mismatch");
  }
  RoutingResult result;
  result.capacityPerBin = options.capacityPerBin;
  result.binsX = std::max(
      1, static_cast<int>(std::ceil(placement.dieWidth / options.binSizeUm)));
  result.binsY = std::max(
      1, static_cast<int>(std::ceil(placement.dieHeight / options.binSizeUm)));
  result.usage.assign(
      static_cast<std::size_t>(result.binsX) * static_cast<std::size_t>(result.binsY),
      0.0);
  BinGrid grid(result, options.binSizeUm);

  for (std::size_t i = 0; i < netlist.size(); ++i) {
    const auto id = static_cast<GateId>(i);
    const double x1 = placement.cx(id);
    const double y1 = placement.cy(id);
    for (GateId f : netlist.gate(id).fanin) {
      const double x0 = placement.cx(f);
      const double y0 = placement.cy(f);
      // Choose the cheaper L (horizontal-then-vertical vs the other).
      const double costHV = grid.segment_cost(x0, y0, x1, y0) +
                            grid.segment_cost(x1, y0, x1, y1);
      const double costVH = grid.segment_cost(x0, y0, x0, y1) +
                            grid.segment_cost(x0, y1, x1, y1);
      if (costHV <= costVH) {
        grid.commit(x0, y0, x1, y0);
        grid.commit(x1, y0, x1, y1);
      } else {
        grid.commit(x0, y0, x0, y1);
        grid.commit(x0, y1, x1, y1);
      }
      result.totalWirelengthUm += std::fabs(x1 - x0) + std::fabs(y1 - y0);
    }
  }

  for (double u : result.usage) {
    result.maxUtilization = std::max(result.maxUtilization, u / options.capacityPerBin);
    if (u > options.capacityPerBin) ++result.overflowedBins;
  }
  return result;
}

std::string RoutingResult::congestion_map() const {
  std::ostringstream out;
  for (int y = binsY - 1; y >= 0; --y) {
    for (int x = 0; x < binsX; ++x) {
      const double u = utilization(x, y);
      char glyph = '.';
      if (u > 1.0) glyph = '!';
      else if (u > 0.75) glyph = '#';
      else if (u > 0.5) glyph = '+';
      else if (u > 0.25) glyph = '-';
      out << glyph;
    }
    out << '\n';
  }
  return out.str();
}

} // namespace nvff::physdes
