#include "physdes/sta.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nvff::physdes {

using bench::GateId;
using bench::GateType;
using bench::Netlist;

TimingReport analyze_timing(const Netlist& netlist, const Placement& placement,
                            const StaOptions& options) {
  if (!netlist.finalized()) {
    throw std::invalid_argument("analyze_timing: netlist must be finalized");
  }
  if (placement.cells.size() != netlist.size()) {
    throw std::invalid_argument("analyze_timing: placement/netlist mismatch");
  }

  TimingReport report;
  report.arrivalPs.assign(netlist.size(), 0.0);
  std::vector<GateId> worstFanin(netlist.size(), bench::kNoGate);

  auto wire = [&](GateId from, GateId to) {
    const double dx = placement.cx(from) - placement.cx(to);
    const double dy = placement.cy(from) - placement.cy(to);
    return options.wirePsPerUm * (std::fabs(dx) + std::fabs(dy));
  };

  // Launch points.
  for (GateId id : netlist.inputs()) {
    report.arrivalPs[static_cast<std::size_t>(id)] = 0.0;
  }
  for (GateId id : netlist.flip_flops()) {
    report.arrivalPs[static_cast<std::size_t>(id)] = options.clkToQPs;
  }

  // Propagate in topological order (combinational gates only).
  for (GateId id : netlist.topo_order()) {
    const auto& g = netlist.gate(id);
    if (g.type == GateType::Input || g.type == GateType::Dff) continue;
    double worst = 0.0;
    GateId argWorst = bench::kNoGate;
    for (GateId f : g.fanin) {
      const double a = report.arrivalPs[static_cast<std::size_t>(f)] + wire(f, id);
      if (a >= worst) {
        worst = a;
        argWorst = f;
      }
    }
    const double fanout = static_cast<double>(g.fanout.size());
    report.arrivalPs[static_cast<std::size_t>(id)] =
        worst + options.intrinsicPs + options.perFanoutPs * fanout;
    worstFanin[static_cast<std::size_t>(id)] = argWorst;
  }

  // Capture points: FF D pins (with setup) and primary outputs.
  double critical = 0.0;
  GateId endpoint = bench::kNoGate;
  GateId endpointSource = bench::kNoGate;
  auto consider = [&](GateId ep, GateId source, double pathDelay) {
    if (pathDelay > critical) {
      critical = pathDelay;
      endpoint = ep;
      endpointSource = source;
    }
  };
  for (GateId ff : netlist.flip_flops()) {
    const GateId d = netlist.gate(ff).fanin[0];
    consider(ff, d,
             report.arrivalPs[static_cast<std::size_t>(d)] + wire(d, ff) +
                 options.setupPs);
  }
  for (GateId out : netlist.outputs()) {
    consider(out, out, report.arrivalPs[static_cast<std::size_t>(out)]);
  }

  report.criticalPathPs = critical;
  report.worstSlackPs = options.clockPeriodPs - critical;
  report.criticalEndpoint = endpoint;

  // Reconstruct the critical path endpoint -> source.
  GateId walk = endpointSource;
  if (endpoint != bench::kNoGate) report.criticalPath.push_back(endpoint);
  while (walk != bench::kNoGate) {
    report.criticalPath.push_back(walk);
    walk = worstFanin[static_cast<std::size_t>(walk)];
  }
  return report;
}

Placement apply_pair_displacement(const Placement& placement, const Netlist& netlist,
                                  const std::vector<std::pair<int, int>>& pairs) {
  Placement moved = placement;
  const auto& ffs = netlist.flip_flops();
  for (const auto& [ia, ib] : pairs) {
    const GateId a = ffs.at(static_cast<std::size_t>(ia));
    const GateId b = ffs.at(static_cast<std::size_t>(ib));
    auto& ca = moved.cells[static_cast<std::size_t>(a)];
    auto& cb = moved.cells[static_cast<std::size_t>(b)];
    // Meet at the midpoint; the merged cell keeps both bits side by side,
    // so offset the two bit positions by half a cell width.
    const double mx = 0.5 * (ca.x + cb.x);
    const double my = 0.5 * (ca.y + cb.y);
    ca.x = mx - 0.5 * ca.width;
    cb.x = mx + 0.5 * cb.width;
    ca.y = my;
    cb.y = my;
  }
  return moved;
}

} // namespace nvff::physdes
