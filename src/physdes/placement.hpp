// Standard-cell placement substrate (stand-in for Cadence Encounter).
//
// The Table III experiment needs realistic *spatial statistics* of placed
// flip-flops, not timing closure. We use the classic analytic recipe:
//
//  1. floorplan: die area = total cell area / utilization, row grid of
//     12-track rows;
//  2. global placement: quadratic (conjugate-gradient solve of the
//     connectivity Laplacian, each fanin edge a 2-pin net) with primary IOs
//     fixed as boundary pads and a weak centre tether for regularization;
//  3. legalization: row assignment by y-order, in-row packing by x-order
//     with uniform spreading.
//
// Connectivity locality survives the sort-based legalization, so register
// banks land adjacently — the phenomenon (Fig. 9) that makes multi-bit
// merging profitable.
#pragma once

#include <vector>

#include "bench_circuits/netlist.hpp"
#include "cell/technology.hpp"

namespace nvff::physdes {

struct PlacedCell {
  bench::GateId gate = bench::kNoGate;
  double x = 0.0; ///< cell left edge [um]
  double y = 0.0; ///< row bottom [um]
  double width = 0.0; ///< [um]
  int row = -1;
  bool fixedPad = false; ///< primary IO on the boundary
};

struct Placement {
  std::string designName;
  double dieWidth = 0.0;  ///< [um]
  double dieHeight = 0.0; ///< [um]
  double rowHeight = 0.0; ///< [um]
  int numRows = 0;
  std::vector<PlacedCell> cells; ///< index == GateId

  /// Center of a cell [um].
  double cx(bench::GateId id) const {
    const auto& c = cells[static_cast<std::size_t>(id)];
    return c.x + 0.5 * c.width;
  }
  double cy(bench::GateId id) const {
    const auto& c = cells[static_cast<std::size_t>(id)];
    return c.y + 0.5 * rowHeight;
  }

  /// Half-perimeter wirelength over all fanin edges [um].
  double hpwl(const bench::Netlist& netlist) const;

  /// Fraction of row capacity used (sanity metric).
  double utilization() const;
};

struct PlacerOptions {
  double utilization = 0.70;
  int cgMaxIterations = 300;
  double cgTolerance = 1e-7;
  double centerTether = 1e-4; ///< weak pull keeping the system non-singular
  std::uint64_t seed = 7;     ///< tie-break jitter
};

/// Places a finalized netlist. Cell widths come from the CMOS library (the
/// NV shadow component is accounted for separately by the core flow).
Placement place(const bench::Netlist& netlist, const cell::CmosCellLibrary& lib,
                const PlacerOptions& options = {});

/// Width of one cell type in um (exposed for the core flow / tests).
double cell_width(const bench::Netlist& netlist, bench::GateId id,
                  const cell::CmosCellLibrary& lib);

} // namespace nvff::physdes
