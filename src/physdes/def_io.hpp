// Minimal DEF (Design Exchange Format) subset writer/reader.
//
// The paper's merging step is "a script executed over the DEF file"
// (Sec. IV-C); we reproduce that interface so the pairing stage consumes the
// same artifact a real flow would produce. Supported subset: DESIGN, UNITS,
// DIEAREA, COMPONENTS with fixed/placed locations.
#pragma once

#include <iosfwd>
#include <string>

#include "bench_circuits/netlist.hpp"
#include "physdes/placement.hpp"

namespace nvff::physdes {

/// Serializes a placement as DEF text. `cellTypeOf` names each component's
/// library cell (defaults to the gate type name).
std::string to_def(const Placement& placement, const bench::Netlist& netlist);
void save_def_file(const Placement& placement, const bench::Netlist& netlist,
                   const std::string& path);

/// A component parsed back from DEF.
struct DefComponent {
  std::string name;
  std::string cellType;
  double x = 0.0; ///< [um]
  double y = 0.0; ///< [um]
  bool fixed = false;
};

struct DefDesign {
  std::string name;
  double dieWidth = 0.0;
  double dieHeight = 0.0;
  std::vector<DefComponent> components;
};

/// Parses the DEF subset back. Throws std::runtime_error on malformed text.
DefDesign parse_def(std::istream& in);
DefDesign parse_def_string(const std::string& text);
DefDesign load_def_file(const std::string& path);

} // namespace nvff::physdes
