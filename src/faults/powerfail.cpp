#include "faults/powerfail.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "runtime/durable_file.hpp"
#include "sim/logic_sim.hpp"
#include "sim/xlogic_sim.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace nvff::faults {

namespace {

std::string fmt(const char* f, ...) {
  char buf[512];
  va_list args;
  va_start(args, f);
  std::vsnprintf(buf, sizeof(buf), f, args);
  va_end(args);
  return buf;
}

/// Golden stimulus stream id: far above any trial id (trial ids are int),
/// so the stimulus never collides with a trial's randomness.
constexpr std::uint64_t kGoldenStream = 1ULL << 40;

} // namespace

const char* trial_class_name(TrialClass cls) {
  switch (cls) {
    case TrialClass::Clean: return "clean";
    case TrialClass::Detected: return "detected";
    case TrialClass::Sdc: return "SDC";
  }
  return "?";
}

CampaignContext build_context(const CampaignConfig& config) {
  if (!config.runUnprotected && !config.runProtected)
    throw std::runtime_error("powerfail: both protocol arms disabled");
  if (config.checkCycles <= 0)
    throw std::runtime_error("powerfail: checkCycles must be positive");
  if (config.warmupCycles < 0 || config.staleLagCycles < 0 ||
      config.staleLagCycles > config.warmupCycles)
    throw std::runtime_error(
        "powerfail: need 0 <= staleLagCycles <= warmupCycles");
  if (config.weightPowerLoss < 0 || config.weightBrownOut < 0 ||
      config.weightGlitch < 0 ||
      config.weightPowerLoss + config.weightBrownOut + config.weightGlitch <= 0)
    throw std::runtime_error("powerfail: fault-kind weights must be "
                             "non-negative and not all zero");

  CampaignContext ctx;
  ctx.config = config;
  ctx.flow = core::run_flow(bench::find_benchmark(config.benchmark));
  ctx.schedules[0] = build_schedule(ctx.flow.ffSites, ctx.flow.pairing,
                                    DesignKind::AllSingleBit, config.clock);
  ctx.schedules[1] = build_schedule(ctx.flow.ffSites, ctx.flow.pairing,
                                    DesignKind::Paired2Bit, config.clock);

  // Golden run: warmup to the power-down point (remembering the backup that
  // staleLagCycles ago would have left in the NV bank), then straight
  // through the check window with no interruption.
  const bench::Netlist& nl = ctx.netlist();
  Rng rng = Rng::stream(config.seed, kGoldenStream);
  const int totalCycles = config.warmupCycles + config.checkCycles;
  ctx.inputs.reserve(static_cast<std::size_t>(totalCycles));
  for (int c = 0; c < totalCycles; ++c) {
    std::vector<bool> in(nl.num_inputs());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.chance(0.5);
    ctx.inputs.push_back(std::move(in));
  }

  sim::LogicSimulator golden(nl);
  ctx.staleState = golden.flip_flop_state();
  for (int c = 0; c < config.warmupCycles; ++c) {
    golden.cycle(ctx.inputs[static_cast<std::size_t>(c)]);
    if (c + 1 == config.warmupCycles - config.staleLagCycles)
      ctx.staleState = golden.flip_flop_state();
  }
  if (config.staleLagCycles == 0) ctx.staleState = golden.flip_flop_state();
  ctx.storedState = golden.flip_flop_state();

  ctx.goldenOutputs.reserve(static_cast<std::size_t>(config.checkCycles));
  for (int c = 0; c < config.checkCycles; ++c) {
    // Outputs are read between evaluate and tick so a flip-flop marked as a
    // primary output reports this cycle's value, mirroring the trial side.
    golden.set_inputs(ctx.inputs[static_cast<std::size_t>(config.warmupCycles + c)]);
    golden.evaluate();
    ctx.goldenOutputs.push_back(golden.output_values());
    golden.tick();
  }
  ctx.goldenFinalState = golden.flip_flop_state();
  return ctx;
}

namespace {

/// Runs one (design, protection) arm against the shared event.
ArmResult run_arm(const CampaignContext& ctx, const BackupSchedule& schedule,
                  bool protection, const FaultEvent& event, std::uint64_t armSeed) {
  const CampaignConfig& cfg = ctx.config;
  ArmResult ar;
  ar.present = true;

  const ProtocolParams pp = cfg.protocol.with_protection(protection);
  Rng rng(armSeed);
  const StoreResult st = simulate_store(schedule, pp, event, rng);
  const RestoreResult rs =
      simulate_restore(schedule, pp, event, st, ctx.storedState, ctx.staleState);
  ar.storeRetries = st.retries;
  ar.restoreRetries = rs.retries;
  ar.opsAttempted = st.opsAttempted;
  ar.storeNs = st.durationNs;
  ar.restoreNs = rs.durationNs;
  for (sim::Trit t : rs.loaded)
    if (t == sim::Trit::X) ++ar.xLoaded;

  if (st.errorFlagged || rs.aborted || rs.errorFlagged) {
    // The controller raised a flag somewhere: whatever the data looks like,
    // the failure is NOT silent.
    ar.cls = TrialClass::Detected;
    return ar;
  }

  // Nothing flagged — the system believes the wake succeeded. Run the check
  // window on what was actually loaded and compare against golden; any
  // divergence (including an X, which a real machine would resolve to some
  // wrong-but-definite value) is silent data corruption.
  sim::XLogicSimulator xsim(ctx.netlist());
  xsim.load_flip_flop_state(rs.loaded);
  const std::vector<bench::GateId>& outs = ctx.netlist().outputs();
  for (int c = 0; c < cfg.checkCycles; ++c) {
    xsim.set_inputs_bool(ctx.inputs[static_cast<std::size_t>(cfg.warmupCycles + c)]);
    xsim.evaluate();
    const std::vector<bool>& want = ctx.goldenOutputs[static_cast<std::size_t>(c)];
    for (std::size_t k = 0; k < outs.size(); ++k) {
      if (xsim.value(outs[k]) != sim::trit_from_bool(want[k])) {
        ar.outputDivergence = true;
        break;
      }
    }
    xsim.tick();
  }
  const std::vector<sim::Trit> finalState = xsim.flip_flop_state();
  for (std::size_t i = 0; i < finalState.size(); ++i) {
    if (finalState[i] != sim::trit_from_bool(ctx.goldenFinalState[i])) {
      ar.stateDivergence = true;
      break;
    }
  }
  ar.cls = (ar.outputDivergence || ar.stateDivergence) ? TrialClass::Sdc
                                                       : TrialClass::Clean;
  return ar;
}

} // namespace

TrialResult run_trial(const CampaignContext& ctx, int trialId,
                      const CancelToken* cancel) {
  const CampaignConfig& cfg = ctx.config;
  TrialResult tr;
  tr.trialId = trialId;

  // Fixed draw order so every trial consumes the same stream prefix
  // regardless of the event it lands on.
  Rng rng = Rng::stream(cfg.seed, static_cast<std::uint64_t>(trialId));
  const double uArmed = rng.uniform();
  const double uKind = rng.uniform();
  const double uPhase = rng.uniform();
  const double uAt = rng.uniform();
  std::uint64_t armSeed[2][2];
  for (int d = 0; d < 2; ++d)
    for (int pr = 0; pr < 2; ++pr) armSeed[d][pr] = rng.next_u64();

  FaultEvent event;
  event.armed = uArmed < cfg.eventProb;
  const double total =
      cfg.weightPowerLoss + cfg.weightBrownOut + cfg.weightGlitch;
  const double pick = uKind * total;
  event.kind = pick < cfg.weightPowerLoss ? FaultKind::PowerLoss
               : pick < cfg.weightPowerLoss + cfg.weightBrownOut
                   ? FaultKind::BrownOut
                   : FaultKind::ControlGlitch;
  event.phase =
      uPhase < cfg.restorePhaseProb ? FaultPhase::Restore : FaultPhase::Store;
  event.atFrac = uAt;
  event.brownoutNs = cfg.brownoutNs;
  tr.hasEvent = event.armed;
  tr.kind = static_cast<int>(event.kind);
  tr.phase = static_cast<int>(event.phase);
  tr.atFrac = event.atFrac;

  for (int d = 0; d < 2; ++d) {
    for (int pr = 0; pr < 2; ++pr) {
      if (pr == 0 && !cfg.runUnprotected) continue;
      if (pr == 1 && !cfg.runProtected) continue;
      // Arm boundary = cancellation point. On a watchdog timeout the trial
      // is returned partial (unrun arms stay absent) and flagged; any other
      // cancellation returns partial for the supervisor to discard.
      if (cancel != nullptr && cancel->cancelled()) {
        tr.timedOut = cancel->reason() == CancelToken::Reason::Timeout;
        return tr;
      }
      tr.arms[d][pr] =
          run_arm(ctx, ctx.schedules[d], pr == 1, event, armSeed[d][pr]);
    }
  }
  return tr;
}

double ArmSummary::sdc_rate() const {
  return trials > 0 ? static_cast<double>(counts[static_cast<int>(TrialClass::Sdc)]) /
                          static_cast<double>(trials)
                    : 0.0;
}

double ArmSummary::retry_rate() const {
  return opsAttempted > 0
             ? static_cast<double>(storeRetries) / static_cast<double>(opsAttempted)
             : 0.0;
}

double ArmSummary::mean_store_ns() const {
  return trials > 0 ? storeNsSum / static_cast<double>(trials) : 0.0;
}

ArmSummary CampaignResult::summarize(DesignKind design, bool protection) const {
  ArmSummary s;
  const int d = static_cast<int>(design);
  const int pr = protection ? 1 : 0;
  for (const TrialResult& t : trials) {
    const ArmResult& a = t.arms[d][pr];
    if (!a.present) continue;
    ++s.trials;
    ++s.counts[static_cast<int>(a.cls)];
    if (t.hasEvent) ++s.classByKind[t.kind][static_cast<int>(a.cls)];
    if (a.outputDivergence) ++s.outputDivergence;
    if (a.stateDivergence && !a.outputDivergence) ++s.stateOnlyDivergence;
    s.storeRetries += a.storeRetries;
    s.restoreRetries += a.restoreRetries;
    s.opsAttempted += a.opsAttempted;
    s.storeNsSum += a.storeNs;
  }
  return s;
}

long CampaignResult::count_sdc(bool protectedOnly) const {
  long n = 0;
  for (const TrialResult& t : trials)
    for (int d = 0; d < 2; ++d)
      for (int pr = protectedOnly ? 1 : 0; pr < 2; ++pr) {
        const ArmResult& a = t.arms[d][pr];
        if (a.present && a.cls == TrialClass::Sdc) ++n;
      }
  return n;
}

CampaignRun run_campaign_supervised(const CampaignConfig& config,
                                    const runtime::RunOptions& run,
                                    const ProgressFn& progress) {
  if (config.trials <= 0) throw std::runtime_error("powerfail needs trials > 0");
  const CampaignContext ctx = build_context(config);

  CampaignRun out;
  out.result.config = config;
  out.result.trials.resize(static_cast<std::size_t>(config.trials));
  std::vector<TrialResult>& slots = out.result.trials;

  runtime::SupervisorConfig sup;
  sup.trials = config.trials;
  sup.threads = std::max(1, config.threads);
  sup.run = run;
  sup.progress = progress;

  runtime::CampaignHooks hooks;
  hooks.runTrial = [&](int t, const CancelToken& cancel) {
    TrialResult r = run_trial(ctx, t, &cancel);
    if (!r.timedOut && cancel.cancelled() &&
        cancel.reason() == CancelToken::Reason::Cancelled)
      return runtime::TrialStatus::Cancelled; // partial; re-run on resume
    const bool timedOut = r.timedOut;
    slots[static_cast<std::size_t>(t)] = std::move(r);
    return timedOut ? runtime::TrialStatus::Timeout : runtime::TrialStatus::Ok;
  };
  hooks.serialize = [&](const std::vector<int>& doneIds) {
    std::vector<TrialResult> finished;
    finished.reserve(doneIds.size());
    for (const int id : doneIds)
      finished.push_back(slots[static_cast<std::size_t>(id)]);
    return serialize_powerfail_checkpoint(config, finished);
  };
  hooks.deserialize = [&](const std::string& payload) {
    PowerfailCheckpoint loaded = parse_powerfail_checkpoint(payload);
    validate_powerfail_checkpoint(config, loaded.config);
    std::vector<int> ids;
    for (TrialResult& t : loaded.trials) {
      if (t.trialId < 0 || t.trialId >= config.trials) continue;
      ids.push_back(t.trialId);
      slots[static_cast<std::size_t>(t.trialId)] = std::move(t);
    }
    return ids;
  };

  out.supervisor = runtime::run_supervised(sup, hooks);
  return out;
}

CampaignResult run_campaign(const CampaignConfig& config,
                            const std::string& checkpointPath,
                            int checkpointEvery, const ProgressFn& progress) {
  runtime::RunOptions run;
  run.checkpointPath = checkpointPath;
  run.checkpointEvery = checkpointEvery;
  return run_campaign_supervised(config, run, progress).result;
}

std::string render_report(const CampaignResult& result) {
  const CampaignConfig& c = result.config;
  std::string out;
  out += "=== Power-interruption campaign: interrupted store/restore ===\n";
  out += fmt("benchmark %s  trials %d  seed %llu\n", c.benchmark.c_str(),
             c.trials, static_cast<unsigned long long>(c.seed));
  out += fmt("event prob %.2f  restore-phase prob %.2f  brown-out %.1f ns  "
             "weights PL/BO/CG %.2f/%.2f/%.2f\n",
             c.eventProb, c.restorePhaseProb, c.brownoutNs, c.weightPowerLoss,
             c.weightBrownOut, c.weightGlitch);
  out += fmt("protocol: write %.1f ns  verify %.1f ns  sense %.1f ns  "
             "backoff %.1f ns  max retries %d  stochastic write-fail %.4f\n\n",
             c.protocol.tWriteNs, c.protocol.tVerifyNs, c.protocol.tSenseNs,
             c.protocol.tBackoffNs, c.protocol.maxRetries,
             c.protocol.writeFailProb);

  out += fmt("%-14s %-14s %7s %7s %9s %6s %9s\n", "design", "protection",
             "trials", "clean", "detected", "SDC", "SDC rate");
  for (int d = 0; d < 2; ++d) {
    for (int pr = 0; pr < 2; ++pr) {
      const ArmSummary s =
          result.summarize(static_cast<DesignKind>(d), pr == 1);
      if (s.trials == 0) continue;
      out += fmt("%-14s %-14s %7ld %7ld %9ld %6ld %8.4f\n",
                 design_kind_name(static_cast<DesignKind>(d)),
                 pr ? "verify+canary" : "off", s.trials, s.counts[0],
                 s.counts[1], s.counts[2], s.sdc_rate());
    }
  }

  out += "\nper fault kind (armed trials), clean/detected/SDC:\n";
  for (int d = 0; d < 2; ++d) {
    for (int pr = 0; pr < 2; ++pr) {
      const ArmSummary s =
          result.summarize(static_cast<DesignKind>(d), pr == 1);
      if (s.trials == 0) continue;
      out += fmt("  %-14s %-14s", design_kind_name(static_cast<DesignKind>(d)),
                 pr ? "verify+canary" : "off");
      for (int k = 0; k < 3; ++k) {
        out += fmt("  %s %ld/%ld/%ld", fault_kind_name(static_cast<FaultKind>(k)),
                   s.classByKind[k][0], s.classByKind[k][1], s.classByKind[k][2]);
      }
      out += "\n";
    }
  }

  out += "\nexposure detail:\n";
  for (int d = 0; d < 2; ++d) {
    for (int pr = 0; pr < 2; ++pr) {
      const ArmSummary s =
          result.summarize(static_cast<DesignKind>(d), pr == 1);
      if (s.trials == 0) continue;
      out += fmt("  %-14s %-14s output-divergent %ld  latent state-only %ld  "
                 "store retries %ld (%.4f/op)  restore retries %ld  "
                 "mean store %.1f ns\n",
                 design_kind_name(static_cast<DesignKind>(d)),
                 pr ? "verify+canary" : "off", s.outputDivergence,
                 s.stateOnlyDivergence, s.storeRetries, s.retry_rate(),
                 s.restoreRetries, s.mean_store_ns());
    }
  }

  const long sdcAll = result.count_sdc(false);
  const long sdcProt = result.count_sdc(true);
  out += fmt("\nsilent corruptions: %ld total, %ld in protected arms\n", sdcAll,
             sdcProt);
  if (c.runProtected) {
    out += sdcProt == 0
               ? "verify-after-write + canary: every injected failure was "
                 "detected or harmless — zero silent corruption\n"
               : "WARNING: protected arms show silent corruption — the "
                 "protocol guarantee is broken\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Checkpoint (JSON via util/json)
// ---------------------------------------------------------------------------

namespace {

using json::append_escaped;
using json::num;
using Json = json::Value;

/// Campaign-defining fields only — threads and checkpoint cadence excluded
/// so changing them never invalidates a resume. This string doubles as the
/// fingerprint validate_powerfail_checkpoint compares.
std::string config_json(const CampaignConfig& c) {
  char seedBuf[24];
  std::snprintf(seedBuf, sizeof(seedBuf), "%llu",
                static_cast<unsigned long long>(c.seed));
  std::string out = "{";
  out += "\"benchmark\":";
  append_escaped(out, c.benchmark);
  out += ",\"trials\":" + num(c.trials);
  out += ",\"seed\":\"" + std::string(seedBuf) + "\"";
  out += ",\"runUnprotected\":";
  out += c.runUnprotected ? "true" : "false";
  out += ",\"runProtected\":";
  out += c.runProtected ? "true" : "false";
  out += ",\"eventProb\":" + num(c.eventProb);
  out += ",\"restorePhaseProb\":" + num(c.restorePhaseProb);
  out += ",\"weights\":[" + num(c.weightPowerLoss) + "," +
         num(c.weightBrownOut) + "," + num(c.weightGlitch) + "]";
  out += ",\"brownoutNs\":" + num(c.brownoutNs);
  out += ",\"warmupCycles\":" + num(c.warmupCycles);
  out += ",\"staleLagCycles\":" + num(c.staleLagCycles);
  out += ",\"checkCycles\":" + num(c.checkCycles);
  out += ",\"protocol\":{\"maxRetries\":" + num(c.protocol.maxRetries);
  out += ",\"tWriteNs\":" + num(c.protocol.tWriteNs);
  out += ",\"tVerifyNs\":" + num(c.protocol.tVerifyNs);
  out += ",\"tSenseNs\":" + num(c.protocol.tSenseNs);
  out += ",\"tBackoffNs\":" + num(c.protocol.tBackoffNs);
  out += ",\"writeFailProb\":" + num(c.protocol.writeFailProb);
  out += "}";
  out += ",\"sinksPerLeafBuffer\":" + num(c.clock.sinksPerLeafBuffer);
  out += "}";
  return out;
}

CampaignConfig config_from_json(const Json& j) {
  CampaignConfig c;
  c.benchmark = j.at("benchmark").as_str();
  c.trials = static_cast<int>(j.at("trials").as_num());
  errno = 0;
  c.seed = std::strtoull(j.at("seed").as_str().c_str(), nullptr, 10);
  if (errno == ERANGE) throw std::runtime_error("powerfail checkpoint: bad seed");
  c.runUnprotected = j.at("runUnprotected").as_bool();
  c.runProtected = j.at("runProtected").as_bool();
  c.eventProb = j.at("eventProb").as_num();
  c.restorePhaseProb = j.at("restorePhaseProb").as_num();
  const Json& w = j.at("weights");
  if (w.items.size() != 3)
    throw std::runtime_error("powerfail checkpoint: weights must have 3 entries");
  c.weightPowerLoss = w.items[0].as_num();
  c.weightBrownOut = w.items[1].as_num();
  c.weightGlitch = w.items[2].as_num();
  c.brownoutNs = j.at("brownoutNs").as_num();
  c.warmupCycles = static_cast<int>(j.at("warmupCycles").as_num());
  c.staleLagCycles = static_cast<int>(j.at("staleLagCycles").as_num());
  c.checkCycles = static_cast<int>(j.at("checkCycles").as_num());
  const Json& p = j.at("protocol");
  c.protocol.maxRetries = static_cast<int>(p.at("maxRetries").as_num());
  c.protocol.tWriteNs = p.at("tWriteNs").as_num();
  c.protocol.tVerifyNs = p.at("tVerifyNs").as_num();
  c.protocol.tSenseNs = p.at("tSenseNs").as_num();
  c.protocol.tBackoffNs = p.at("tBackoffNs").as_num();
  c.protocol.writeFailProb = p.at("writeFailProb").as_num();
  c.clock.sinksPerLeafBuffer =
      static_cast<int>(j.at("sinksPerLeafBuffer").as_num());
  return c;
}

void arm_json(std::string& out, const ArmResult& a) {
  if (!a.present) {
    out += "null";
    return;
  }
  out += "{\"cls\":";
  append_escaped(out, trial_class_name(a.cls));
  out += ",\"outDiv\":";
  out += a.outputDivergence ? "true" : "false";
  out += ",\"stateDiv\":";
  out += a.stateDivergence ? "true" : "false";
  out += ",\"xLoaded\":" + num(a.xLoaded);
  out += ",\"storeRetries\":" + num(a.storeRetries);
  out += ",\"restoreRetries\":" + num(a.restoreRetries);
  out += ",\"ops\":" + num(a.opsAttempted);
  out += ",\"storeNs\":" + num(a.storeNs);
  out += ",\"restoreNs\":" + num(a.restoreNs);
  out += "}";
}

TrialClass class_from_name(const std::string& name) {
  for (int i = 0; i <= static_cast<int>(TrialClass::Sdc); ++i)
    if (name == trial_class_name(static_cast<TrialClass>(i)))
      return static_cast<TrialClass>(i);
  throw std::runtime_error("powerfail checkpoint: unknown class '" + name + "'");
}

ArmResult arm_from_json(const Json& j) {
  ArmResult a;
  if (j.kind == Json::Kind::Null) return a;
  a.present = true;
  a.cls = class_from_name(j.at("cls").as_str());
  a.outputDivergence = j.at("outDiv").as_bool();
  a.stateDivergence = j.at("stateDiv").as_bool();
  a.xLoaded = static_cast<int>(j.at("xLoaded").as_num());
  a.storeRetries = static_cast<int>(j.at("storeRetries").as_num());
  a.restoreRetries = static_cast<int>(j.at("restoreRetries").as_num());
  a.opsAttempted = static_cast<int>(j.at("ops").as_num());
  a.storeNs = j.at("storeNs").as_num();
  a.restoreNs = j.at("restoreNs").as_num();
  return a;
}

} // namespace

std::string serialize_powerfail_checkpoint(const CampaignConfig& config,
                                           const std::vector<TrialResult>& trials) {
  std::string out = "{\"format\":\"nvff-powerfail-checkpoint-v1\",\"config\":";
  out += config_json(config);
  out += ",\"trials\":[";
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const TrialResult& t = trials[i];
    if (i) out += ',';
    out += "\n{\"trial\":" + num(t.trialId);
    out += ",\"event\":";
    out += t.hasEvent ? "true" : "false";
    out += ",\"kind\":" + num(t.kind);
    out += ",\"phase\":" + num(t.phase);
    out += ",\"atFrac\":" + num(t.atFrac);
    out += ",\"timedOut\":";
    out += t.timedOut ? "true" : "false";
    out += ",\"arms\":[";
    for (int d = 0; d < 2; ++d)
      for (int pr = 0; pr < 2; ++pr) {
        if (d || pr) out += ',';
        arm_json(out, t.arms[d][pr]);
      }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

PowerfailCheckpoint parse_powerfail_checkpoint(const std::string& text) {
  const Json doc = json::parse(text, "powerfail checkpoint");
  if (doc.at("format").as_str() != "nvff-powerfail-checkpoint-v1")
    throw std::runtime_error("powerfail checkpoint: unknown format tag");
  PowerfailCheckpoint cp;
  cp.config = config_from_json(doc.at("config"));
  for (const Json& tj : doc.at("trials").items) {
    TrialResult t;
    t.trialId = static_cast<int>(tj.at("trial").as_num());
    t.hasEvent = tj.at("event").as_bool();
    t.kind = static_cast<int>(tj.at("kind").as_num());
    t.phase = static_cast<int>(tj.at("phase").as_num());
    t.atFrac = tj.at("atFrac").as_num();
    // Absent in pre-runtime checkpoints; those trials all ran to completion.
    const Json* timedOut = tj.find("timedOut");
    t.timedOut = timedOut != nullptr && timedOut->as_bool();
    const Json& arms = tj.at("arms");
    if (arms.items.size() != 4)
      throw std::runtime_error("powerfail checkpoint: trial needs 4 arms");
    for (int d = 0; d < 2; ++d)
      for (int pr = 0; pr < 2; ++pr)
        t.arms[d][pr] = arm_from_json(arms.items[static_cast<std::size_t>(d * 2 + pr)]);
    cp.trials.push_back(std::move(t));
  }
  return cp;
}

void write_powerfail_checkpoint(const std::string& path,
                                const CampaignConfig& config,
                                const std::vector<TrialResult>& trials) {
  // Durable commit: CRC envelope, fsync before and after the rename, and a
  // rotated previous generation the loader can fall back to.
  runtime::commit_durable(path, serialize_powerfail_checkpoint(config, trials));
}

bool load_powerfail_checkpoint(const std::string& path, PowerfailCheckpoint& out) {
  const runtime::DurableLoad loaded = runtime::load_durable(path);
  if (!loaded.found) return false;
  out = parse_powerfail_checkpoint(loaded.payload);
  return true;
}

void validate_powerfail_checkpoint(const CampaignConfig& run,
                                   const CampaignConfig& loaded) {
  if (config_json(run) != config_json(loaded))
    throw runtime::ConfigMismatch(
        "powerfail checkpoint belongs to a different campaign configuration; "
        "delete it or rerun with the original settings",
        config_json(loaded), config_json(run));
}

} // namespace nvff::faults
