#include "faults/protocol.hpp"

#include <cmath>
#include <limits>

namespace nvff::faults {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::PowerLoss: return "power-loss";
    case FaultKind::BrownOut: return "brown-out";
    case FaultKind::ControlGlitch: return "control-glitch";
  }
  return "?";
}

const char* fault_phase_name(FaultPhase phase) {
  switch (phase) {
    case FaultPhase::Store: return "store";
    case FaultPhase::Restore: return "restore";
  }
  return "?";
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The event rendered onto the phase's absolute timeline: a rail cut
/// instant, a sag interval, or a glitch instant (the unused ones sit at
/// values no window can reach).
struct Timeline {
  double cut = kInf;
  double sagLo = kInf;
  double sagHi = -kInf;
  bool glitch = false;
  double glitchAt = kInf;

  bool sag_overlaps(double a, double b) const { return a < sagHi && b > sagLo; }
  bool glitch_in(double a, double b) const {
    return glitch && glitchAt >= a && glitchAt < b;
  }
};

Timeline make_timeline(const FaultEvent& event, FaultPhase phase, double nominalNs) {
  Timeline tl;
  if (!event.armed || event.phase != phase) return tl;
  const double at = event.atFrac * nominalNs;
  switch (event.kind) {
    case FaultKind::PowerLoss:
      tl.cut = at;
      break;
    case FaultKind::BrownOut:
      tl.sagLo = at;
      tl.sagHi = at + event.brownoutNs;
      break;
    case FaultKind::ControlGlitch:
      tl.glitch = true;
      tl.glitchAt = at;
      break;
  }
  return tl;
}

sim::Trit invert(sim::Trit t) {
  if (t == sim::Trit::Zero) return sim::Trit::One;
  if (t == sim::Trit::One) return sim::Trit::Zero;
  return sim::Trit::X;
}

double per_write_ns(const ProtocolParams& p) {
  return p.tWriteNs + (p.verifyAfterWrite ? p.tVerifyNs : 0.0);
}

} // namespace

double nominal_store_ns(const BackupSchedule& schedule, const ProtocolParams& p) {
  double ns = static_cast<double>(schedule.storeOps.size()) * per_write_ns(p);
  if (p.canary) ns += static_cast<double>(schedule.numDomains) * per_write_ns(p);
  return ns;
}

double nominal_restore_ns(const BackupSchedule& schedule, const ProtocolParams& p) {
  const double samples = p.verifyAfterWrite ? 2.0 : 1.0;
  return static_cast<double>(schedule.restoreOps.size()) * p.tSenseNs * samples;
}

StoreResult simulate_store(const BackupSchedule& schedule, const ProtocolParams& p,
                           const FaultEvent& event, Rng& rng) {
  StoreResult r;
  r.bits.assign(schedule.storeOps.size(), NvBitContent::Stale);
  r.canaryOk.assign(static_cast<std::size_t>(schedule.numDomains),
                    p.canary ? char(0) : char(1));

  const Timeline tl = make_timeline(event, FaultPhase::Store, nominal_store_ns(schedule, p));
  double t = 0.0;
  bool powered = true;

  // One write (+ verify/retry when protected) of `content`'s bit. Returns
  // once the bit verified, retries ran out, or the rail died.
  auto write_bit = [&](NvBitContent& content, bool countOp) {
    for (int attempt = 0;; ++attempt) {
      if (t >= tl.cut) { powered = false; return; }
      const double w0 = t;
      const double w1 = t + p.tWriteNs;
      if (countOp && attempt == 0) ++r.opsAttempted;
      if (w1 > tl.cut) {
        // Rail collapsed mid-pulse: the junction is left indeterminate.
        content = NvBitContent::Unknown;
        powered = false;
        return;
      }
      t = w1;
      if (tl.sag_overlaps(w0, w1) || rng.chance(p.writeFailProb)) {
        // Sagged (or stochastically failed) write: junction keeps whatever
        // it held — silently, as far as the bare controller can tell.
      } else if (tl.glitch_in(w0, w1)) {
        content = NvBitContent::Flipped; // wrong value, committed for real
      } else {
        content = NvBitContent::Correct;
      }
      if (!p.verifyAfterWrite) return;

      const double v0 = t;
      const double v1 = t + p.tVerifyNs;
      if (v1 > tl.cut) { powered = false; return; }
      t = v1;
      // The read-back passes only when the bit really holds the intended
      // value AND the comparison itself was undisturbed; a sagged or
      // glitched verify reads garbage and conservatively reports mismatch.
      const bool pass = content == NvBitContent::Correct &&
                        !tl.sag_overlaps(v0, v1) && !tl.glitch_in(v0, v1);
      if (pass) return;
      if (attempt >= p.maxRetries) {
        r.errorFlagged = true; // retries exhausted: loudly give up on the bit
        return;
      }
      const double backoff = std::ldexp(p.tBackoffNs, attempt);
      t += backoff; // a cut inside the backoff trips the t >= cut check above
      ++r.retries;
    }
  };

  std::size_t op = 0;
  for (int d = 0; d < schedule.numDomains && powered; ++d) {
    const std::size_t end = static_cast<std::size_t>(schedule.domainOpEnd[static_cast<std::size_t>(d)]);
    bool domainVerified = true;
    for (; op < end && powered; ++op) {
      write_bit(r.bits[op], /*countOp=*/true);
      if (r.bits[op] != NvBitContent::Correct) domainVerified = false;
    }
    if (!powered || !p.canary) continue;
    if (!domainVerified) continue; // canary withheld: restore must not trust us
    NvBitContent canaryBit = NvBitContent::Stale;
    write_bit(canaryBit, /*countOp=*/false);
    r.canaryOk[static_cast<std::size_t>(d)] = canaryBit == NvBitContent::Correct ? 1 : 0;
  }

  r.durationNs = powered ? t : tl.cut; // power, not the controller, ends it
  return r;
}

RestoreResult simulate_restore(const BackupSchedule& schedule,
                               const ProtocolParams& p, const FaultEvent& event,
                               const StoreResult& store,
                               const std::vector<bool>& storedState,
                               const std::vector<bool>& staleState) {
  RestoreResult r;
  r.loaded.assign(schedule.numFfs, sim::Trit::X);

  // Protected pre-flight: a flagged store or a missing completion canary
  // means the NV bank cannot be trusted — refuse the restore outright.
  if (p.verifyAfterWrite && store.errorFlagged) {
    r.aborted = true;
    return r;
  }
  if (p.canary) {
    for (char ok : store.canaryOk) {
      if (!ok) {
        r.aborted = true;
        return r;
      }
    }
  }

  const Timeline tl =
      make_timeline(event, FaultPhase::Restore, nominal_restore_ns(schedule, p));
  double t = 0.0;
  bool powered = true;

  // What the junction actually holds, as a logic value.
  auto junction_value = [&](std::size_t opIdx) {
    const BackupOp& op = schedule.restoreOps[opIdx];
    const std::size_t ff = static_cast<std::size_t>(op.ff);
    switch (store.bits[opIdx]) {
      case NvBitContent::Correct: return sim::trit_from_bool(storedState[ff]);
      case NvBitContent::Stale: return sim::trit_from_bool(staleState[ff]);
      case NvBitContent::Flipped: return sim::trit_from_bool(!storedState[ff]);
      case NvBitContent::Unknown: break;
    }
    return sim::Trit::X;
  };
  // One sense over [a, b): a sag drowns the read margin (garbage), a glitch
  // inverts the sensed value.
  auto sense = [&](sim::Trit value, double a, double b) {
    if (tl.sag_overlaps(a, b)) return sim::Trit::X;
    if (tl.glitch_in(a, b)) return invert(value);
    return value;
  };

  for (std::size_t i = 0; i < schedule.restoreOps.size() && powered; ++i) {
    const std::size_t ff = static_cast<std::size_t>(schedule.restoreOps[i].ff);
    const sim::Trit value = junction_value(i);
    if (!p.verifyAfterWrite) {
      const double s0 = t;
      const double s1 = t + p.tSenseNs;
      if (t >= tl.cut || s1 > tl.cut) { powered = false; break; }
      t = s1;
      r.loaded[ff] = sense(value, s0, s1); // whatever it read, in it goes
      continue;
    }
    // Protected: two back-to-back samples must agree and be definite.
    for (int attempt = 0;; ++attempt) {
      if (t >= tl.cut) { powered = false; break; }
      const double a0 = t;
      const double a1 = t + p.tSenseNs;
      const double b1 = a1 + p.tSenseNs;
      if (b1 > tl.cut) { powered = false; break; }
      t = b1;
      const sim::Trit s1 = sense(value, a0, a1);
      const sim::Trit s2 = sense(value, a1, b1);
      if (s1 == s2 && s1 != sim::Trit::X) {
        r.loaded[ff] = s1;
        break;
      }
      if (attempt >= p.maxRetries) {
        r.errorFlagged = true; // can't get a stable read: say so, load X
        break;
      }
      t += std::ldexp(p.tBackoffNs, attempt);
      ++r.retries;
    }
  }

  // Wake-completion check: the protected controller knows how many senses it
  // owes; losing the rail mid-restore is detected, never papered over.
  if (!powered && p.canary) r.aborted = true;
  r.durationNs = powered ? t : tl.cut;
  return r;
}

} // namespace nvff::faults
