// Interruptible store/restore protocol over a BackupSchedule.
//
// The protocol walks the schedule op by op on a nanosecond timeline and
// injects one fault event at a sampled instant:
//
//   power-loss     — the rail collapses at t_event; every operation not yet
//                    complete is lost, an MTJ write cut mid-pulse leaves the
//                    junction in an indeterminate (X) state.
//   brown-out      — a sag over [t_event, t_event + duration): MTJ writes
//                    overlapping it silently fail (the junction keeps its
//                    previous contents), sense reads return garbage. The
//                    controller keeps running and, unprotected, believes
//                    every operation succeeded.
//   control-glitch — a single-instant upset of the control logic: the write
//                    or sense in flight at t_event moves the WRONG (inverted)
//                    value, committed electrically.
//
// Protection (the fix the campaign quantifies, after Monga et al.'s
// self-write-termination NV-SRAM) is verify-after-write plus a completion
// canary:
//
//   * every store write is read back and compared; a mismatch retries the
//     write after an exponentially backed-off delay, up to maxRetries, then
//     flags a store error (detected, not silent);
//   * each domain writes a canary bit — through the same verified protocol —
//     only after all its data bits verified; restore refuses to trust a
//     domain whose canary is missing;
//   * restore senses are double-sampled; disagreeing samples retry, so a
//     glitched or sagged sense can never be loaded silently.
//
// Every path a fault can take either leaves the data intact or raises a
// flag; that structural property is what drives the campaign's protected
// SDC rate to zero.
#pragma once

#include <cstdint>
#include <vector>

#include "faults/schedule.hpp"
#include "sim/xlogic_sim.hpp"
#include "util/rng.hpp"

namespace nvff::faults {

enum class FaultKind { PowerLoss, BrownOut, ControlGlitch };
const char* fault_kind_name(FaultKind kind);

enum class FaultPhase { Store, Restore };
const char* fault_phase_name(FaultPhase phase);

/// One injected event. `atFrac` places the event inside the NOMINAL
/// (retry-free) duration of the targeted phase, so the instant is known
/// before the protocol runs and the same FRACTION of the phase is hit in
/// every arm (absolute instants differ where the protection lengthens the
/// nominal schedule).
struct FaultEvent {
  bool armed = false; ///< false: clean control trial, nothing injected
  FaultKind kind = FaultKind::PowerLoss;
  FaultPhase phase = FaultPhase::Store;
  double atFrac = 0.0;    ///< [0,1) position within the phase
  double brownoutNs = 0.0; ///< sag duration (BrownOut only)
};

struct ProtocolParams {
  bool verifyAfterWrite = false; ///< store read-back + restore double-sample
  bool canary = false;           ///< per-domain completion canary bit
  int maxRetries = 5;            ///< verify retries per bit before flagging
  double tWriteNs = 10.0;   ///< one MTJ write pulse
  double tVerifyNs = 4.0;   ///< read-back compare after a write
  double tSenseNs = 4.0;    ///< one restore sense phase (per sample)
  double tBackoffNs = 6.0;  ///< first retry backoff; doubles per retry
  double writeFailProb = 0.0; ///< per-attempt stochastic MTJ write failure

  /// Both protection mechanisms on/off together (the campaign's two arms).
  ProtocolParams with_protection(bool on) const {
    ProtocolParams p = *this;
    p.verifyAfterWrite = on;
    p.canary = on;
    return p;
  }
};

/// What one NV bit holds after the store phase.
enum class NvBitContent : std::uint8_t {
  Correct, ///< the intended (freshly stored) value
  Stale,   ///< the previous backup's value (write never committed)
  Flipped, ///< the inverted value (glitched write, committed)
  Unknown, ///< indeterminate junction (write cut mid-pulse)
};

/// Nominal phase durations (no retries) — the event-time reference frame.
double nominal_store_ns(const BackupSchedule& schedule, const ProtocolParams& p);
double nominal_restore_ns(const BackupSchedule& schedule, const ProtocolParams& p);

struct StoreResult {
  std::vector<NvBitContent> bits; ///< per storeOps index
  std::vector<char> canaryOk;     ///< per domain (all 1 when canary is off)
  bool errorFlagged = false; ///< verify retries exhausted — controller knows
  int retries = 0;           ///< rewrite attempts beyond the first, total
  int opsAttempted = 0;      ///< ops whose first write pulse began
  double durationNs = 0.0;   ///< actual elapsed store time
};

/// Runs the store phase. `rng` feeds only the stochastic write failures (the
/// event itself is fixed by `event`), so a zero writeFailProb never draws.
StoreResult simulate_store(const BackupSchedule& schedule, const ProtocolParams& p,
                           const FaultEvent& event, Rng& rng);

struct RestoreResult {
  std::vector<sim::Trit> loaded; ///< per FF: the value the wake loads
  bool aborted = false;          ///< protection refused the restore (canary
                                 ///< missing / store error / wake incomplete)
  bool errorFlagged = false;     ///< re-sense retries exhausted
  int retries = 0;
  double durationNs = 0.0;
};

/// Runs the restore phase against the store outcome. `storedState` is the
/// architectural state the store meant to save; `staleState` is the previous
/// backup still sitting in unwritten junctions.
RestoreResult simulate_restore(const BackupSchedule& schedule,
                               const ProtocolParams& p, const FaultEvent& event,
                               const StoreResult& store,
                               const std::vector<bool>& storedState,
                               const std::vector<bool>& staleState);

} // namespace nvff::faults
