#include "faults/schedule.hpp"

#include <algorithm>
#include <stdexcept>

namespace nvff::faults {

const char* design_kind_name(DesignKind design) {
  switch (design) {
    case DesignKind::AllSingleBit: return "1-bit cells";
    case DesignKind::Paired2Bit: return "2-bit paired";
  }
  return "?";
}

BackupSchedule build_schedule(const std::vector<pairing::FlipFlopSite>& sites,
                              const pairing::PairingResult& pairing,
                              DesignKind design,
                              const core::ClockModelParams& clock) {
  BackupSchedule s;
  s.design = design;
  s.numFfs = sites.size();

  // Cells plus the clock sink each presents (2-bit cells sit at the pair
  // midpoint — the same sink model estimate_clock_network_mbff uses).
  std::vector<pairing::FlipFlopSite> sinks;
  if (design == DesignKind::AllSingleBit) {
    s.cells.reserve(sites.size());
    for (std::size_t i = 0; i < sites.size(); ++i) {
      NvCell cell;
      cell.ffLower = static_cast<int>(i);
      s.cells.push_back(cell);
    }
    sinks = sites;
  } else {
    s.cells.reserve(pairing.pairs.size() + pairing.unmatched.size());
    for (const pairing::Pair& p : pairing.pairs) {
      if (p.a < 0 || p.b < 0 ||
          static_cast<std::size_t>(p.a) >= sites.size() ||
          static_cast<std::size_t>(p.b) >= sites.size()) {
        throw std::invalid_argument("build_schedule: pairing references a "
                                    "site outside the site list");
      }
      NvCell cell;
      cell.ffLower = std::min(p.a, p.b);
      cell.ffUpper = std::max(p.a, p.b);
      s.cells.push_back(cell);
      const auto& a = sites[static_cast<std::size_t>(p.a)];
      const auto& b = sites[static_cast<std::size_t>(p.b)];
      pairing::FlipFlopSite mid;
      mid.x = 0.5 * (a.x + b.x);
      mid.y = 0.5 * (a.y + b.y);
      sinks.push_back(mid);
    }
    for (int u : pairing.unmatched) {
      if (u < 0 || static_cast<std::size_t>(u) >= sites.size()) {
        throw std::invalid_argument("build_schedule: pairing references a "
                                    "site outside the site list");
      }
      NvCell cell;
      cell.ffLower = u;
      s.cells.push_back(cell);
      sinks.push_back(sites[static_cast<std::size_t>(u)]);
    }
  }

  // Domains: the clock tree's leaf-buffer groups over the cell sinks.
  const std::vector<std::vector<int>> groups = core::clock_leaf_groups(sinks, clock);
  s.numDomains = static_cast<int>(groups.size());
  for (int d = 0; d < s.numDomains; ++d) {
    for (int cellIdx : groups[static_cast<std::size_t>(d)]) {
      NvCell& cell = s.cells[static_cast<std::size_t>(cellIdx)];
      cell.domain = d;
      BackupOp lower;
      lower.cell = cellIdx;
      lower.ff = cell.ffLower;
      lower.bit = 0;
      lower.domain = d;
      s.storeOps.push_back(lower);
      if (cell.is_pair()) {
        BackupOp upper = lower;
        upper.ff = cell.ffUpper;
        upper.bit = 1;
        s.storeOps.push_back(upper);
      }
    }
    s.domainOpEnd.push_back(static_cast<int>(s.storeOps.size()));
  }
  // The sequential 2-bit read restores lower-then-upper; the store issues in
  // the same order, so the restore schedule is the store schedule.
  s.restoreOps = s.storeOps;
  return s;
}

} // namespace nvff::faults
