// Power-interruption fault-injection campaign (system level).
//
// The paper's value proposition is that architectural state survives power
// collapse via the NV shadow latch — but what happens when the BACKUP ITSELF
// is interrupted? Every trial injects one power-loss / brown-out /
// control-glitch event at a sampled instant of the store or restore phase,
// runs the interruptible protocol (faults/protocol.hpp) over the placed
// design's backup schedule (faults/schedule.hpp), loads whatever survived
// into a three-valued logic simulation of the benchmark, and classifies the
// trial against an uninterrupted golden run:
//
//   clean     — the machine is architecturally indistinguishable from the
//               golden run over the whole check window;
//   detected  — the protocol raised a flag (verify exhausted, canary
//               missing, wake incomplete): the failure is visible to the
//               system, recovery is possible;
//   SDC       — silent data corruption: outputs or architectural state
//               diverge from golden and NOTHING signalled an error.
//
// Both Table II fabrics run in every trial — all-1-bit cells vs paired
// 2-bit cells (whose two bits are sensed sequentially, widening the
// mid-sequence exposure window) — and, by default, both protocol arms
// (unprotected vs verify-after-write + canary), all against the same
// sampled event: the report is a paired comparison.
//
// Determinism contract (same as reliability/montecarlo.hpp): trial t draws
// everything from Rng::stream(seed, t), writes slot t, aggregation walks
// slots in order — output is bit-identical at any thread count, and a
// checkpoint resume matches an uninterrupted run sample for sample.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "faults/protocol.hpp"
#include "faults/schedule.hpp"
#include "runtime/supervisor.hpp"
#include "util/cancellation.hpp"

namespace nvff::faults {

/// Classified outcome of one (design, protection) arm of a trial.
enum class TrialClass {
  Clean,    ///< indistinguishable from the golden run
  Detected, ///< corrupted or incomplete, but the system KNOWS
  Sdc,      ///< diverged from golden with no error indication
};
const char* trial_class_name(TrialClass cls);

struct CampaignConfig {
  std::string benchmark = "s1423";
  int trials = 256;
  std::uint64_t seed = 1;
  int threads = 1;

  bool runUnprotected = true; ///< plain fire-and-forget store
  bool runProtected = true;   ///< verify-after-write + completion canary

  double eventProb = 1.0;        ///< probability a trial carries an event
  double restorePhaseProb = 0.25; ///< event lands in restore (else store)
  /// Relative sampling weights of the three fault kinds.
  double weightPowerLoss = 1.0;
  double weightBrownOut = 1.0;
  double weightGlitch = 1.0;
  double brownoutNs = 40.0; ///< sag duration

  int warmupCycles = 48;   ///< golden stimulus before the power-down point
  int staleLagCycles = 8;  ///< age of the previous backup in the NV bank
  int checkCycles = 24;    ///< post-restore compare window

  ProtocolParams protocol{};     ///< timings/failure rate; verify+canary set per arm
  core::ClockModelParams clock{}; ///< backup-domain granularity (leaf buffers)
};

struct ArmResult {
  bool present = false; ///< false when the config skips this arm
  TrialClass cls = TrialClass::Clean;
  bool outputDivergence = false; ///< wrong/X primary output in the window
  bool stateDivergence = false;  ///< wrong/X FF at the end of the window
  int xLoaded = 0;               ///< X bits the wake loaded
  int storeRetries = 0;
  int restoreRetries = 0;
  int opsAttempted = 0;
  double storeNs = 0.0;
  double restoreNs = 0.0;
};

struct TrialResult {
  int trialId = 0;
  bool hasEvent = false;
  int kind = 0;     ///< FaultKind enumerator value
  int phase = 0;    ///< FaultPhase enumerator value
  double atFrac = 0.0;
  /// The per-trial watchdog cancelled this trial mid-way: the arms it did
  /// not reach have present == false and the summaries skip them.
  bool timedOut = false;
  /// arms[design][protection]: design 0 = AllSingleBit, 1 = Paired2Bit;
  /// protection 0 = off, 1 = verify-after-write + canary.
  ArmResult arms[2][2];
};

/// Everything trial workers share read-only: the placed benchmark, both
/// schedules, and the golden run (stimulus, the state the store must save,
/// the stale previous backup, and the reference outputs/state to diverge
/// from). Built once per campaign; building it is deterministic.
struct CampaignContext {
  CampaignConfig config;
  core::FlowReport flow; ///< owns the netlist the simulators reference
  BackupSchedule schedules[2]; ///< by DesignKind enumerator value
  std::vector<std::vector<bool>> inputs; ///< warmup + check cycles
  std::vector<bool> storedState; ///< FF state at the power-down point
  std::vector<bool> staleState;  ///< FF state staleLagCycles earlier
  std::vector<std::vector<bool>> goldenOutputs; ///< per check cycle
  std::vector<bool> goldenFinalState;

  const bench::Netlist& netlist() const { return flow.circuit.netlist; }
};

/// Builds the shared context (flow, schedules, golden run). Throws on an
/// unknown benchmark or a degenerate config (no cycles, no arms).
CampaignContext build_context(const CampaignConfig& config);

/// Runs one trial (all configured arms). Never throws. `cancel` is polled
/// at arm boundaries; a Timeout cancellation marks the trial timedOut, any
/// other cancellation returns the partial trial for the caller to discard.
TrialResult run_trial(const CampaignContext& context, int trialId,
                      const CancelToken* cancel = nullptr);

struct ArmSummary {
  long trials = 0;
  long counts[3] = {0, 0, 0};        ///< by TrialClass
  long classByKind[3][3] = {};       ///< [FaultKind][TrialClass], armed trials
  long outputDivergence = 0;
  long stateOnlyDivergence = 0;      ///< latent: state diverged, outputs clean
  long storeRetries = 0;
  long restoreRetries = 0;
  long opsAttempted = 0;
  double storeNsSum = 0.0;

  double sdc_rate() const;   ///< SDC trials / trials
  double retry_rate() const; ///< store retries per attempted store op
  double mean_store_ns() const;
};

struct CampaignResult {
  CampaignConfig config;
  std::vector<TrialResult> trials; ///< slot t = trial t, always full size

  ArmSummary summarize(DesignKind design, bool protection) const;
  /// SDC count across arms; `protectedOnly` restricts to protection-on arms
  /// (the CI gate: protected SDC must be zero).
  long count_sdc(bool protectedOnly) const;
};

using ProgressFn = std::function<void(int, int)>;

/// A supervised campaign: results plus the runtime supervisor's account of
/// how the run ended (see reliability::CampaignRun — same shape).
struct CampaignRun {
  CampaignResult result;
  runtime::SupervisorOutcome supervisor;
};

/// Runs the campaign on the shared runtime supervisor (durable checkpoints,
/// per-trial watchdog, campaign deadline, SIGINT/SIGTERM drain). Semantics
/// match reliability::run_campaign_supervised.
CampaignRun run_campaign_supervised(const CampaignConfig& config,
                                    const runtime::RunOptions& run,
                                    const ProgressFn& progress = nullptr);

/// Legacy entry point: runs to completion with no watchdogs or signal
/// handling. Checkpoint semantics match reliability::run_campaign: JSON
/// snapshots every `checkpointEvery` trials, resume skips finished slots,
/// config fingerprint mismatch throws.
CampaignResult run_campaign(const CampaignConfig& config,
                            const std::string& checkpointPath = "",
                            int checkpointEvery = 16,
                            const ProgressFn& progress = nullptr);

/// Deterministic human-readable report. No wall-clock, no thread info:
/// identical campaigns must render identically.
std::string render_report(const CampaignResult& result);

// --- checkpoint (JSON via util/json, same guarantees as reliability) -------

std::string serialize_powerfail_checkpoint(const CampaignConfig& config,
                                           const std::vector<TrialResult>& trials);
struct PowerfailCheckpoint {
  CampaignConfig config;
  std::vector<TrialResult> trials;
};
PowerfailCheckpoint parse_powerfail_checkpoint(const std::string& text);
void write_powerfail_checkpoint(const std::string& path,
                                const CampaignConfig& config,
                                const std::vector<TrialResult>& trials);
bool load_powerfail_checkpoint(const std::string& path, PowerfailCheckpoint& out);
/// Throws when `loaded` came from an incompatible campaign (anything but
/// thread count differs).
void validate_powerfail_checkpoint(const CampaignConfig& run,
                                   const CampaignConfig& loaded);

} // namespace nvff::faults
