// Backup operation schedules: the bridge between the physical design (placed
// flip-flops, pairing, clock tree) and the power-interruption engine.
//
// A store or restore is not one atomic event — it is a sequence of per-bit
// MTJ operations issued by local controllers. The schedule pins down the two
// properties the fault campaign cares about:
//
//   * ORDER. Backup domains are the clock tree's leaf-buffer groups
//     (core::clock_leaf_groups): the sinks under one leaf buffer share the
//     local clock driver and, in the NV flow, the store/restore control
//     signals, so they form one sequenced control domain. Domains run one
//     after another (a store current budget forbids firing every MTJ write
//     at once); bits inside a domain are sequenced in site order.
//   * GRANULARITY. The proposed 2-bit cell reads its bits in two sequential
//     sense phases (paper Fig. 6/7), lower bit first; the schedule models
//     each bit as its own interruptible operation, which is exactly why the
//     2-bit cell is MORE exposed to mid-sequence interruptions than two
//     independent 1-bit cells with the same bit count.
#pragma once

#include <cstddef>
#include <vector>

#include "core/clock_network.hpp"
#include "pairing/pairing.hpp"

namespace nvff::faults {

/// The two Table II backup fabrics the campaign compares.
enum class DesignKind {
  AllSingleBit, ///< every FF shadows into its own 1-bit NV cell
  Paired2Bit,   ///< paired FFs share a 2-bit cell, rest stay 1-bit
};
const char* design_kind_name(DesignKind design);

/// One NV shadow cell and the flip-flops it backs up.
struct NvCell {
  int ffLower = -1; ///< FF index (netlist flip_flops() order)
  int ffUpper = -1; ///< second bit of a 2-bit cell; -1 for a 1-bit cell
  int domain = 0;   ///< backup domain (clock leaf group)
  bool is_pair() const { return ffUpper >= 0; }
};

/// One per-bit store or restore operation.
struct BackupOp {
  int cell = 0;   ///< index into BackupSchedule::cells
  int ff = 0;     ///< FF index whose bit this op moves
  int bit = 0;    ///< 0 = lower, 1 = upper (2-bit cells only)
  int domain = 0; ///< backup domain of the owning cell
};

struct BackupSchedule {
  DesignKind design = DesignKind::AllSingleBit;
  std::size_t numFfs = 0;
  int numDomains = 0;
  std::vector<NvCell> cells;
  /// Issue order: domain-major, site order within a domain, lower bit then
  /// upper bit within a 2-bit cell. Store and restore share the order (the
  /// same controllers sequence both directions).
  std::vector<BackupOp> storeOps;
  std::vector<BackupOp> restoreOps;
  /// One past the last storeOps index of each domain (domain d covers
  /// [d == 0 ? 0 : domainOpEnd[d-1], domainOpEnd[d])). The protected
  /// protocol writes the domain's completion canary at this boundary.
  std::vector<int> domainOpEnd;
};

/// Builds the schedule for one design over placed flip-flop sites. For
/// Paired2Bit the pairing decides which FFs share a cell (lower bit = the
/// smaller site index); AllSingleBit ignores it. Domains come from
/// core::clock_leaf_groups over the cell sink positions (pair midpoint for
/// 2-bit cells), so the two designs see the same physical clock regions.
BackupSchedule build_schedule(const std::vector<pairing::FlipFlopSite>& sites,
                              const pairing::PairingResult& pairing,
                              DesignKind design,
                              const core::ClockModelParams& clock = {});

} // namespace nvff::faults
