// Regenerates Table I: the circuit-level setup actually used by this
// reproduction, next to the paper's values.
#include <cstdio>

#include "cell/technology.hpp"
#include "mtj/model.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace nvff;
  using namespace nvff::units;
  const auto tech = cell::Technology::table1();
  const auto mtj = mtj::MtjParams::table1();

  TextTable t({"Parameter", "Paper (Table I)", "This reproduction"});
  t.add_row({"VDD and Temperature", "1.1 V and 27 C",
             format("%.1f V and %.0f C", tech.vdd, tech.tempC)});
  t.add_row({"MTJ radius", "20 nm", eng(mtj.radius, "m", 0)});
  t.add_row({"Free/Oxide layer thickness", "1.84/1.48 nm",
             format("%.2f/%.2f nm", mtj.freeThickness * 1e9, mtj.oxideThickness * 1e9)});
  t.add_row({"RA", "1.26 Ohm um^2", format("%.2f Ohm um^2", mtj.ra * 1e12)});
  t.add_row({"TMR @ 0V", "123%", format("%.0f%%", mtj.tmr0 * 100.0)});
  t.add_row({"Critical current", "37 uA", eng(mtj.iCritical, "A", 0)});
  t.add_row({"Switching current", "70 uA", eng(mtj.iSwitching, "A", 0)});
  t.add_row({"'AP'/'P' resistance", "11 kOhm / 5 kOhm",
             format("%.0f kOhm / %.0f kOhm", mtj.rAntiParallel / 1e3,
                    mtj.rParallel / 1e3)});
  t.add_row({"CMOS process", "TSMC 40 nm LP SPICE",
             "synthetic 40 nm LP EKV model (see DESIGN.md)"});
  t.add_row({"Process corners", "+-3 sigma RA/TMR/Isw",
             format("+-3 sigma, sigma = %.0f%%/%.0f%%/%.0f%%",
                    mtj::MtjParams::kSigmaRaRel * 100, mtj::MtjParams::kSigmaTmrRel * 100,
                    mtj::MtjParams::kSigmaIcRel * 100)});

  std::printf("TABLE I — circuit-level setup\n%s\n", t.render().c_str());
  std::printf("note: the paper's published RA (1.26 Ohm um^2) and R_P (5 kOhm) are\n"
              "mutually inconsistent for a 20 nm-radius pillar (RA/area ~ 1 kOhm);\n"
              "the electrical values R_P/R_AP are authoritative in this model.\n");
  return 0;
}
