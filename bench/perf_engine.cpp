// Google-benchmark microbenchmarks for the substrate engines themselves:
// MNA solves, transient stepping, placement and pairing scaling. These
// quantify the cost of the reproduction infrastructure (not a paper table).
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_circuits/generator.hpp"
#include "cell/characterize.hpp"
#include "cell/multibit_latch.hpp"
#include "pairing/pairing.hpp"
#include "physdes/placement.hpp"
#include "spice/analysis.hpp"
#include "util/rng.hpp"

namespace {

using namespace nvff;

void BM_DenseLuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  spice::DenseMatrix a(n);
  std::vector<double> b(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a.add(i, j, (i == j) ? 10.0 : 1.0 / static_cast<double>(1 + i + j));
    }
  }
  std::vector<double> x;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.solve(b, x));
  }
}
BENCHMARK(BM_DenseLuSolve)->Arg(16)->Arg(48)->Arg(96);

void BM_MultibitLatchDcOp(benchmark::State& state) {
  const auto tech = cell::Technology::table1();
  const auto corner = tech.read_corner(cell::Corner::Typical);
  auto inst = cell::MultibitNvLatch::build_idle(tech, corner);
  spice::Simulator sim(inst.circuit);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.dc_operating_point());
  }
}
BENCHMARK(BM_MultibitLatchDcOp);

void BM_MultibitLatchRestoreTransient(benchmark::State& state) {
  const auto tech = cell::Technology::table1();
  cell::Characterizer chr(tech);
  chr.timestep = 4e-12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chr.proposed_read(cell::Corner::Typical, true, false));
  }
}
BENCHMARK(BM_MultibitLatchRestoreTransient)->Unit(benchmark::kMillisecond);

void BM_PlacementScaling(benchmark::State& state) {
  const char* names[] = {"s344", "s5378", "s38584"};
  const auto& spec =
      bench::find_benchmark(names[static_cast<std::size_t>(state.range(0))]);
  const auto nl = bench::generate_benchmark(spec);
  physdes::PlacerOptions opt;
  opt.utilization = spec.utilization;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        physdes::place(nl, cell::CmosCellLibrary::tsmc40_like(), opt));
  }
  state.SetLabel(spec.name);
}
BENCHMARK(BM_PlacementScaling)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_PairingScaling(benchmark::State& state) {
  Rng rng(1);
  std::vector<pairing::FlipFlopSite> sites;
  const auto n = static_cast<std::size_t>(state.range(0));
  const double side = std::sqrt(static_cast<double>(n)) * 3.0;
  for (std::size_t i = 0; i < n; ++i) {
    sites.push_back({"f", rng.uniform(0, side), rng.uniform(0, side)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pairing::pair_flip_flops(sites));
  }
}
BENCHMARK(BM_PairingScaling)->Arg(100)->Arg(1000)->Arg(6042);

void BM_BenchmarkGeneration(benchmark::State& state) {
  const auto& spec = bench::find_benchmark("s13207");
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::generate_benchmark(spec));
  }
}
BENCHMARK(BM_BenchmarkGeneration)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
