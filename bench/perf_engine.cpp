// Google-benchmark microbenchmarks for the substrate engines themselves:
// MNA solves, transient stepping, placement and pairing scaling. These
// quantify the cost of the reproduction infrastructure (not a paper table).
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_circuits/generator.hpp"
#include "cell/characterize.hpp"
#include "cell/multibit_latch.hpp"
#include "pairing/pairing.hpp"
#include "physdes/placement.hpp"
#include "reliability/montecarlo.hpp"
#include "spice/analysis.hpp"
#include "util/rng.hpp"

namespace {

using namespace nvff;

void BM_DenseLuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  spice::DenseMatrix a(n);
  std::vector<double> b(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a.add(i, j, (i == j) ? 10.0 : 1.0 / static_cast<double>(1 + i + j));
    }
  }
  std::vector<double> x;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.solve(b, x));
  }
}
BENCHMARK(BM_DenseLuSolve)->Arg(16)->Arg(48)->Arg(96);

void BM_MultibitLatchDcOp(benchmark::State& state) {
  const auto tech = cell::Technology::table1();
  const auto corner = tech.read_corner(cell::Corner::Typical);
  auto inst = cell::MultibitNvLatch::build_idle(tech, corner);
  spice::Simulator sim(inst.circuit);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.dc_operating_point());
  }
}
BENCHMARK(BM_MultibitLatchDcOp);

void BM_MultibitLatchRestoreTransient(benchmark::State& state) {
  const auto tech = cell::Technology::table1();
  cell::Characterizer chr(tech);
  chr.timestep = 4e-12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chr.proposed_read(cell::Corner::Typical, true, false));
  }
}
BENCHMARK(BM_MultibitLatchRestoreTransient)->Unit(benchmark::kMillisecond);

// Fresh deck construction for one power-cycle scenario: the cost a campaign
// used to pay per trial per design (and still pays once per thread at
// compile time). Pairs with BM_DeckPatch to show the compile/patch split.
void BM_DeckBuildPowerCycle(benchmark::State& state) {
  const auto tech = cell::Technology::table1();
  const auto corner = tech.read_corner(cell::Corner::Typical);
  for (auto _ : state) {
    auto inst = cell::MultibitNvLatch::build_power_cycle(
        tech, corner, true, false, cell::PowerCycleTiming{});
    benchmark::DoNotOptimize(inst.circuit.num_unknowns());
  }
}
BENCHMARK(BM_DeckBuildPowerCycle)->Unit(benchmark::kMicrosecond);

// Full deck-template construction: netlist build + CompiledCircuit compile +
// workspace bind. This is the once-per-thread cost of the run-many API.
void BM_DeckCompilePowerCycle(benchmark::State& state) {
  const auto tech = cell::Technology::table1();
  const auto corner = tech.read_corner(cell::Corner::Typical);
  for (auto _ : state) {
    cell::MultibitPowerCycleDeck deck(tech, corner, true, false,
                                      cell::PowerCycleTiming{});
    benchmark::DoNotOptimize(deck.compiled.num_unknowns());
  }
}
BENCHMARK(BM_DeckCompilePowerCycle)->Unit(benchmark::kMicrosecond);

// Per-trial parameter patch on a compiled deck: corner + per-transistor Vth
// mismatch + MTJ model/state reset. This replaces BM_DeckBuildPowerCycle's
// work in the campaign inner loop.
void BM_DeckPatch(benchmark::State& state) {
  const auto tech = cell::Technology::table1();
  const auto corner = tech.read_corner(cell::Corner::Typical);
  cell::MultibitPowerCycleDeck deck(tech, corner, true, false,
                                    cell::PowerCycleTiming{});
  Rng rng(1);
  for (auto _ : state) {
    deck.patch(corner, &rng, 0.02);
    benchmark::DoNotOptimize(deck.inst.mtj1->orientation());
  }
}
BENCHMARK(BM_DeckPatch)->Unit(benchmark::kMicrosecond);

// One full store -> power-off -> restore transient on a patched compiled
// deck: the dominant per-trial solve cost once compile and patch are off the
// critical path.
void BM_CompiledPowerCycleSolve(benchmark::State& state) {
  const auto tech = cell::Technology::table1();
  const auto corner = tech.read_corner(cell::Corner::Typical);
  cell::MultibitPowerCycleDeck deck(tech, corner, true, false,
                                    cell::PowerCycleTiming{});
  spice::TransientOptions opt;
  opt.tStop = deck.inst.tEnd;
  opt.dt = 4e-12;
  for (auto _ : state) {
    deck.patch(corner);
    spice::Simulator sim(deck.compiled, deck.ws);
    sim.transient(opt, {});
    benchmark::DoNotOptimize(deck.inst.mtj1->orientation());
  }
}
BENCHMARK(BM_CompiledPowerCycleSolve)->Unit(benchmark::kMillisecond);

// The headline number: sampled store -> power-off -> restore trials per
// second through the real campaign entry point (single thread, fixed seed,
// default cycle shape — the CI smoke configuration scaled down).
void BM_McCampaignTrials(benchmark::State& state) {
  reliability::CampaignConfig config;
  config.trials = 8;
  config.seed = 1;
  config.threads = 1;
  for (auto _ : state) {
    auto result = reliability::run_campaign(config);
    benchmark::DoNotOptimize(result.trials.size());
  }
  state.counters["trials_per_s"] = benchmark::Counter(
      static_cast<double>(config.trials) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
// Trials execute on the supervisor's pool thread even at --threads 1, so the
// benchmark thread's own CPU time is meaningless here: measure wall clock.
BENCHMARK(BM_McCampaignTrials)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_PlacementScaling(benchmark::State& state) {
  const char* names[] = {"s344", "s5378", "s38584"};
  const auto& spec =
      bench::find_benchmark(names[static_cast<std::size_t>(state.range(0))]);
  const auto nl = bench::generate_benchmark(spec);
  physdes::PlacerOptions opt;
  opt.utilization = spec.utilization;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        physdes::place(nl, cell::CmosCellLibrary::tsmc40_like(), opt));
  }
  state.SetLabel(spec.name);
}
BENCHMARK(BM_PlacementScaling)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_PairingScaling(benchmark::State& state) {
  Rng rng(1);
  std::vector<pairing::FlipFlopSite> sites;
  const auto n = static_cast<std::size_t>(state.range(0));
  const double side = std::sqrt(static_cast<double>(n)) * 3.0;
  for (std::size_t i = 0; i < n; ++i) {
    sites.push_back({"f", rng.uniform(0, side), rng.uniform(0, side)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pairing::pair_flip_flops(sites));
  }
}
BENCHMARK(BM_PairingScaling)->Arg(100)->Arg(1000)->Arg(6042);

void BM_BenchmarkGeneration(benchmark::State& state) {
  const auto& spec = bench::find_benchmark("s13207");
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::generate_benchmark(spec));
  }
}
BENCHMARK(BM_BenchmarkGeneration)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
