// Regenerates Fig. 6: the working sequence of the proposed multi-bit latch —
// store phase (a) and two-part restore phase (b) — as simulated waveforms.
#include <cstdio>

#include "cell/multibit_latch.hpp"
#include "spice/analysis.hpp"
#include "spice/trace.hpp"
#include "spice/vcd.hpp"
#include "util/units.hpp"

int main() {
  using namespace nvff;
  using namespace nvff::units;
  using namespace nvff::cell;

  const Technology tech = Technology::table1();
  const TechCorner corner = tech.read_corner(Corner::Typical);

  // Full normally-off cycle: store D0=1, D1=0, power-gate, wake, restore.
  PowerCycleTiming timing{};
  auto inst = MultibitNvLatch::build_power_cycle(tech, corner, true, false, timing);

  spice::Trace trace;
  for (const char* node :
       {"vdd", "wen", "pcg", "pcvb", "ren", "p3b", "p4b", "n4", "out", "outb",
        "sn1", "sn2", "sp1", "sp2"}) {
    trace.watch_node(inst.circuit, node);
  }
  spice::Simulator sim(inst.circuit);
  spice::TransientOptions opt;
  opt.tStop = inst.tEnd;
  opt.dt = 4 * ps;
  sim.transient(opt, trace.observer());

  std::printf("FIG 6 — working sequence (store D0=1/D1=0, power-down, restore)\n");
  std::printf("legend: '#' > 0.75 VDD, '+' > 0.5, '.' > 0.25, '_' low\n\n");
  std::printf("%s\n",
              trace
                  .ascii_waves({"vdd", "wen", "sn1", "sn2", "sp1", "sp2", "pcvb",
                                "pcg", "ren", "p3b", "out", "outb"},
                               110, tech.vdd)
                  .c_str());

  std::printf("event timeline:\n");
  std::printf("  %6.2f ns  store: WEN rises, write drivers push +-%0.0f uA through "
              "both MTJ pairs in parallel\n",
              timing.write.start * 1e9, 70.0);
  std::printf("  %6.2f ns  store complete (all four MTJs switched: %d flips)\n",
              timing.write.end() * 1e9,
              inst.mtj1->flip_count() + inst.mtj2->flip_count() +
                  inst.mtj3->flip_count() + inst.mtj4->flip_count());
  std::printf("  %6.2f ns  power-down: VDD collapses, volatile state lost\n",
              timing.offStart() * 1e9);
  std::printf("  %6.2f ns  wake-up: VDD restored\n", timing.onStart() * 1e9);
  std::printf("  %6.2f ns  restore phase 1: precharge VDD, Ren senses lower pair "
              "(D0) -> out = %.2f V\n",
              inst.tEval0Start * 1e9, trace.value_at("out", inst.tCapture0));
  std::printf("  %6.2f ns  restore phase 2: precharge GND, P3 senses upper pair "
              "(D1) -> out = %.2f V\n",
              inst.tEval1Start * 1e9, trace.value_at("out", inst.tCapture1));

  spice::VcdOptions vcdOpt;
  vcdOpt.swing = tech.vdd;
  spice::save_vcd_file(trace, "fig6_waveforms.vcd", vcdOpt);
  std::printf("\n(full waveforms written to fig6_waveforms.vcd — GTKWave-ready)\n");

  const bool d0Ok = trace.value_at("out", inst.tCapture0) > tech.vdd / 2;
  const bool d1Ok = trace.value_at("out", inst.tCapture1) < tech.vdd / 2;
  std::printf("\nrestored (D0, D1) = (%d, %d), expected (1, 0): %s\n", d0Ok ? 1 : 0,
              d1Ok ? 0 : 1, (d0Ok && d1Ok) ? "PASS" : "FAIL");
  return 0;
}
