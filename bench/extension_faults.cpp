// EXTENSION — MTJ defect injection into the proposed 2-bit latch (the
// fault-model the paper's companion work, ref [16], studies for NV FFs).
//
// For every single-MTJ defect (pinned-P, pinned-AP, shorted barrier, open
// barrier, on each of the four pillars), run the full store+restore across
// all data values and report which ones are detected (wrong restore) vs
// silently tolerated — the data a test-pattern designer needs.
#include <cmath>
#include <cstdio>

#include "cell/multibit_latch.hpp"
#include "spice/analysis.hpp"
#include "spice/trace.hpp"
#include "util/units.hpp"

using namespace nvff;
using namespace nvff::cell;
using namespace nvff::units;

namespace {

const char* defect_name(mtj::MtjDefect d) {
  switch (d) {
    case mtj::MtjDefect::None: return "none";
    case mtj::MtjDefect::PinnedParallel: return "pinned-P";
    case mtj::MtjDefect::PinnedAntiParallel: return "pinned-AP";
    case mtj::MtjDefect::ShortedBarrier: return "short";
    case mtj::MtjDefect::OpenBarrier: return "open";
  }
  return "?";
}

/// A defect run has THREE outcomes, not two: the restore can return the
/// data (defect tolerated), return wrong data (defect detected), or the
/// simulation itself can fail to converge. The last is a property of the
/// solver, not of the silicon — counting it as "detected" (as an earlier
/// version of this bench did by catching ConvergenceError) inflates fault
/// coverage with trials that say nothing about the circuit.
enum class DefectRun { Restored, Mismatch, SimFail };

/// Runs store(d0,d1) with the defect present, then — after a long power-off
/// that erases all volatile residue (modelled by starting the restore from
/// the all-discharged state) — restores and checks the read.
///
/// The two-stage structure matters: a short simulated power gap leaves the
/// written data as residual charge on the latch internals, which masks dead
/// MTJs; real standby intervals are orders of magnitude longer.
DefectRun run_with_defect(int victim, mtj::MtjDefect defect, bool d0, bool d1) {
  const Technology tech = Technology::table1();
  const TechCorner readCorner = tech.read_corner(Corner::Typical);
  const TechCorner writeCorner = tech.write_corner(Corner::Typical);

  // Stage 1: the store, with the defect in place.
  mtj::MtjOrientation stored[4];
  {
    auto inst = MultibitNvLatch::build_write(tech, writeCorner, d0, d1,
                                             WriteTiming{});
    mtj::MtjDevice* mtjs[4] = {inst.mtj1, inst.mtj2, inst.mtj3, inst.mtj4};
    mtjs[victim]->inject_defect(defect);
    spice::Simulator sim(inst.circuit);
    spice::TransientOptions opt;
    opt.tStop = inst.tEnd;
    opt.dt = 5 * ps;
    if (!sim.run_transient(opt, nullptr).ok()) return DefectRun::SimFail;
    for (int i = 0; i < 4; ++i) stored[i] = mtjs[i]->orientation();
  }

  // Stage 2: wake-up restore from a fully discharged chip.
  TwoBitReadTiming timing{};
  auto inst = MultibitNvLatch::build_read(tech, readCorner, d0, d1, timing);
  mtj::MtjDevice* mtjs[4] = {inst.mtj1, inst.mtj2, inst.mtj3, inst.mtj4};
  for (int i = 0; i < 4; ++i) mtjs[i]->set_orientation(stored[i]);
  mtjs[victim]->inject_defect(defect);

  spice::Trace trace;
  trace.watch_node(inst.circuit, "out");
  trace.watch_node(inst.circuit, "outb");
  spice::Simulator sim(inst.circuit);
  spice::TransientOptions opt;
  opt.tStop = inst.tEnd;
  opt.dt = 5 * ps;
  spice::Solution zero(std::vector<double>(inst.circuit.num_unknowns(), 0.0),
                       inst.circuit.num_nodes());
  if (!sim.run_transient_from(zero, opt, trace.observer()).ok())
    return DefectRun::SimFail;
  // Healthy only when the differential resolved cleanly AND matches — a
  // defect that collapses the race to a tie is a metastable read that real
  // silicon resolves by noise, so it counts as detectable.
  auto resolved = [&](double tCapture, bool expected) {
    const double vo = trace.value_at("out", tCapture);
    const double vb = trace.value_at("outb", tCapture);
    if (std::fabs(vo - vb) < 0.4 * tech.vdd) return false; // tie/metastable
    return (vo > vb) == expected;
  };
  return resolved(inst.tCapture0, d0) && resolved(inst.tCapture1, d1)
             ? DefectRun::Restored
             : DefectRun::Mismatch;
}

} // namespace

int main() {
  std::printf("EXTENSION — single-MTJ defect injection, proposed 2-bit latch\n");
  std::printf("entry = restored/mismatch/sim-fail over the 4 data values. A defect\n");
  std::printf("is TESTABLE when some value MISMATCHES; sim-fail runs are solver\n");
  std::printf("casualties and prove nothing about the silicon (they are counted\n");
  std::printf("separately, not as detections).\n\n");
  std::printf("%-10s %8s %8s %8s %8s\n", "defect", "MTJ1", "MTJ2", "MTJ3", "MTJ4");

  const mtj::MtjDefect defects[] = {
      mtj::MtjDefect::PinnedParallel, mtj::MtjDefect::PinnedAntiParallel,
      mtj::MtjDefect::ShortedBarrier, mtj::MtjDefect::OpenBarrier};
  int totalFaults = 0;
  int testable = 0;
  int inconclusive = 0;
  int simFailRuns = 0;
  for (const auto defect : defects) {
    std::printf("%-10s", defect_name(defect));
    for (int victim = 0; victim < 4; ++victim) {
      int restored = 0;
      int mismatch = 0;
      int simfail = 0;
      for (int v = 0; v < 4; ++v) {
        switch (run_with_defect(victim, defect, (v & 1) != 0, (v & 2) != 0)) {
          case DefectRun::Restored: ++restored; break;
          case DefectRun::Mismatch: ++mismatch; break;
          case DefectRun::SimFail: ++simfail; break;
        }
      }
      std::printf("  %d/%d/%d ", restored, mismatch, simfail);
      ++totalFaults;
      simFailRuns += simfail;
      if (mismatch > 0) ++testable;
      else if (simfail > 0) ++inconclusive; // undetected, but not proven safe
    }
    std::printf("\n");
  }
  std::printf("\nfault coverage of the exhaustive 2-bit data sweep: %d/%d faults "
              "testable (%.0f%%), %d inconclusive, %d sim-fail run(s)\n",
              testable, totalFaults, 100.0 * testable / totalFaults,
              inconclusive, simFailRuns);
  std::printf(
      "pinned defects flip exactly the data values whose write needed the\n"
      "blocked transition; barrier defects skew the differential race for\n"
      "every read of the affected pair — both observable via restore\n"
      "mismatch, i.e. a march-like store/restore test suffices (as ref\n"
      "[16] concludes for single-bit NV flip-flops).\n\n"
      "caveat found while building this: with a SHORT power gap the written\n"
      "data survives as residual charge on the latch internals and masks dead\n"
      "MTJs — production tests must ensure a full discharge (or actively\n"
      "clamp the internals) before the restore that checks the NV path.\n");
  return 0;
}
