// EXTENSION — power-interruption fault-injection campaign (EXPERIMENTS.md
// "Power-interruption campaign" section regenerator).
//
// The paper argues the NV flip-flop makes power collapse harmless; this
// bench attacks the weakest moment instead — the backup/restore sequence
// itself. Every trial interrupts the per-bit store/restore schedule of a
// placed benchmark (power cut, supply sag, or control glitch at a sampled
// instant), loads whatever survived into a 0/1/X logic simulation, and
// classifies the outcome against an uninterrupted golden run. Both Table II
// fabrics (all-1-bit vs paired 2-bit cells) and both protocol arms (bare
// writes vs verify-after-write + per-domain completion canary) face the
// same events, so the report is a paired comparison of silent-data-
// corruption exposure — and a structural check that the protected arm
// converts every silent corruption into a detected failure.
//
//   bench_extension_powerfail [trials] [threads] [seed]
//
// Output is deterministic for a given (trials, seed) at any thread count.
// Exits nonzero if a protected arm ever corrupts silently.
#include <cstdio>
#include <cstdlib>

#include "faults/powerfail.hpp"

using namespace nvff;

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 96;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2018;

  std::printf("EXTENSION — store/restore under power-interruption faults\n\n");

  long protectedSdc = 0;
  for (const char* bench : {"s838", "s1423"}) {
    faults::CampaignConfig cfg;
    cfg.benchmark = bench;
    cfg.trials = trials;
    cfg.threads = threads;
    cfg.seed = seed;
    const faults::CampaignResult result = faults::run_campaign(cfg);
    std::printf("%s\n", faults::render_report(result).c_str());
    protectedSdc += result.count_sdc(/*protectedOnly=*/true);
  }

  // A stochastically unreliable MTJ write raises the retry toll but must
  // not dent the guarantee: the verified protocol pays time, never data.
  faults::CampaignConfig noisy;
  noisy.benchmark = "s838";
  noisy.trials = trials;
  noisy.threads = threads;
  noisy.seed = seed + 1;
  noisy.protocol.writeFailProb = 0.05;
  std::printf("--- with 5%% stochastic MTJ write failure ---\n");
  const faults::CampaignResult result = faults::run_campaign(noisy);
  std::printf("%s", faults::render_report(result).c_str());
  protectedSdc += result.count_sdc(/*protectedOnly=*/true);

  if (protectedSdc > 0) {
    std::fprintf(stderr,
                 "protected arms corrupted silently %ld time(s) — the "
                 "verify+canary guarantee is broken\n",
                 protectedSdc);
    return 1;
  }
  return 0;
}
