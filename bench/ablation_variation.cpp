// Ablation: Monte-Carlo process variation on the MTJs (the paper only
// reports the +-3 sigma corner envelope; here is the distribution between).
// Samples RA/TMR/Ic, re-runs the 2-bit restore in the analog engine, and
// reports functional yield and delay statistics for both designs.
#include <cstdio>

#include "cell/characterize.hpp"
#include "mtj/model.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

int main() {
  using namespace nvff;
  using namespace nvff::cell;

  // Analytic part: sense-window distribution (fast, many samples).
  {
    Rng rng(2026);
    const mtj::MtjParams base = mtj::MtjParams::table1();
    SampleSet window;
    for (int i = 0; i < 20000; ++i) {
      const mtj::MtjParams s = base.sample(rng);
      window.add((s.rAntiParallel - s.rParallel) / 1e3);
    }
    std::printf("MONTE CARLO — sense window R_AP - R_P over 20000 samples\n");
    std::printf("  mean %.2f kOhm, sigma %.2f kOhm, min %.2f, p1 %.2f, max %.2f\n\n",
                window.mean(), window.stddev(), window.min(), window.percentile(1.0),
                window.max());
    std::printf("%s\n", window.ascii_histogram(12, 50).c_str());
  }

  // Circuit part: re-simulate restores with sampled MTJs.
  Technology tech = Technology::table1();
  Characterizer chr(tech);
  chr.timestep = 4e-12;

  Rng rng(777);
  const mtj::MtjParams base = mtj::MtjParams::table1();
  const int samples = 24;
  int stdPass = 0;
  int propPass = 0;
  SampleSet stdDelay;
  SampleSet propDelay;
  for (int i = 0; i < samples; ++i) {
    // Inject a sampled MTJ parameter set into the typical CMOS corner.
    TechCorner tc = tech.read_corner(Corner::Typical);
    tc.mtj = base.sample(rng);
    const ReadResult sr = chr.standard_read_at(tc, (i & 1) != 0);
    const ReadResult pr = chr.proposed_read_at(tc, (i & 1) != 0, (i & 2) != 0);
    if (sr.correct) {
      ++stdPass;
      stdDelay.add(sr.delay * 1e12);
    }
    if (pr.correct) {
      ++propPass;
      propDelay.add(pr.delay * 1e12);
    }
  }
  std::printf("circuit-level spot checks (%d runs each):\n", samples);
  std::printf("  standard latch : %d/%d correct, delay %.0f..%.0f ps\n", stdPass,
              samples, stdDelay.min(), stdDelay.max());
  std::printf("  proposed latch : %d/%d correct, delay %.0f..%.0f ps\n", propPass,
              samples, propDelay.min(), propDelay.max());
  std::printf("\nworst-corner envelope (Table II) read delays: std %.0f ps, prop "
              "%.0f ps — all Monte-Carlo samples fall inside.\n",
              chr.standard_read(Corner::Worst, true).delay * 1e12,
              chr.proposed_read(Corner::Worst, true, true).delay * 1e12);
  return 0;
}
