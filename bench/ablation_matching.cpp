// Ablation: matcher quality. The paper uses a script (greedy in spirit);
// how many pairs does simple greedy leave behind vs the improved matcher,
// and what is that worth at system level?
#include <cstdio>

#include "core/flow.hpp"
#include "util/stats.hpp"

int main() {
  using namespace nvff;

  std::printf("ABLATION — matching algorithm quality\n\n");
  std::printf("%-10s %14s %14s %12s %14s\n", "benchmark", "greedy pairs",
              "improved pairs", "gain", "area impr delta");
  for (const char* name : {"s344", "s838", "s1423", "s5378", "s13207", "s38584",
                           "s35932", "b14", "b15", "b17", "or1200"}) {
    core::FlowOptions greedyOpt;
    greedyOpt.pairing.algorithm = pairing::MatchAlgorithm::Greedy;
    const core::FlowReport g = core::run_flow(bench::find_benchmark(name), greedyOpt);

    core::FlowOptions improvedOpt;
    improvedOpt.pairing.algorithm = pairing::MatchAlgorithm::GreedyImproved;
    const core::FlowReport i =
        core::run_flow(bench::find_benchmark(name), improvedOpt);

    std::printf("%-10s %14zu %14zu %11.1f%% %13.2f%%\n", name, g.pairs, i.pairs,
                g.pairs > 0
                    ? 100.0 * static_cast<double>(i.pairs - g.pairs) /
                          static_cast<double>(g.pairs)
                    : 0.0,
                i.areaImprovementPct - g.areaImprovementPct);
  }
  std::printf("\nconclusion: the DEF-script-style greedy matcher is within a few\n"
              "percent of the improved matcher — consistent with the paper using a\n"
              "simple script without losing the headline numbers.\n");
  return 0;
}
