// Regenerates Table II: full circuit-level characterization of the two
// standard 1-bit latches vs the proposed 2-bit latch at all corners.
#include <cstdio>

#include "core/reports.hpp"

int main() {
  using namespace nvff;
  cell::Characterizer chr;
  chr.timestep = 2e-12;
  const core::Table2Result result = core::measure_table2(chr);
  std::printf("%s\n", core::render_table2(result).c_str());
  std::printf("functional (all data values, store+restore+corners): std=%s prop=%s\n",
              (result.standard[0].functional && result.standard[1].functional &&
               result.standard[2].functional)
                  ? "PASS"
                  : "FAIL",
              (result.proposed[0].functional && result.proposed[1].functional &&
               result.proposed[2].functional)
                  ? "PASS"
                  : "FAIL");
  return 0;
}
