// EXTENSION — routing impact of the multi-bit replacement.
//
// Completes the paper's floorplan/placement/routing flow: global-route each
// benchmark before and after moving merged FF pairs to their shared sites,
// and report wirelength and congestion. The merge must not damage
// routability for the "drop into the normal flow" claim to hold.
#include <cstdio>

#include "core/flow.hpp"
#include "physdes/routing.hpp"
#include "physdes/sta.hpp"

int main() {
  using namespace nvff;
  using namespace nvff::physdes;

  std::printf("EXTENSION — global routing before/after FF merging\n\n");
  std::printf("%-8s %14s %14s %10s %12s %12s\n", "bench", "WL before [um]",
              "WL after [um]", "delta", "maxUtil bef", "maxUtil aft");
  for (const char* name : {"s1423", "s5378", "s13207", "b15"}) {
    const core::FlowReport r = core::run_flow(bench::find_benchmark(name));
    const auto& nl = r.circuit.netlist;
    const RoutingResult before = route(nl, r.placement);
    std::vector<std::pair<int, int>> pairs;
    for (const auto& pr : r.pairing.pairs) pairs.emplace_back(pr.a, pr.b);
    const Placement moved = apply_pair_displacement(r.placement, nl, pairs);
    const RoutingResult after = route(nl, moved);
    std::printf("%-8s %14.0f %14.0f %9.2f%% %12.2f %12.2f\n", name,
                before.totalWirelengthUm, after.totalWirelengthUm,
                100.0 * (after.totalWirelengthUm - before.totalWirelengthUm) /
                    before.totalWirelengthUm,
                before.maxUtilization, after.maxUtilization);
  }

  // Congestion heat map for the floorplan benchmark of Fig. 9.
  const core::FlowReport s344 = core::run_flow(bench::find_benchmark("s344"));
  RouterOptions opt;
  opt.binSizeUm = 2.0;
  const RoutingResult rr = route(s344.circuit.netlist, s344.placement, opt);
  std::printf("\ns344 congestion map (bin %.0f um, '.'<25%% '-'<50%% '+'<75%% "
              "'#'<100%% '!'=overflow):\n%s",
              opt.binSizeUm, rr.congestion_map().c_str());
  std::printf("\nconclusion: merging the paired flip-flops is wirelength-neutral\n"
              "(their data nets shorten as often as they stretch) and does not\n"
              "create congestion hot-spots — routing confirms the merged cells\n"
              "drop into the standard flow, as the paper assumes.\n");
  return 0;
}
