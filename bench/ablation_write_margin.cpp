// ABLATION — write margin vs supply voltage.
//
// The write path pushes ~70 uA through two MTJs in series (5k + 11k at low
// bias); at VDD = 1.1 V that is marginal by design, which is why the paper
// reports 2 ns *worst-case* switching. This sweep quantifies the margin:
// write latency and energy vs VDD, at typical and worst process corners —
// the data behind write-assist (boost) decisions.
#include <cstdio>

#include "cell/characterize.hpp"
#include "util/strings.hpp"

int main() {
  using namespace nvff;
  using namespace nvff::cell;

  std::printf("ABLATION — 2-bit latch store vs supply voltage\n\n");
  std::printf("%8s | %14s %14s | %14s %14s\n", "VDD [V]", "typ lat [ns]",
              "typ E [fJ]", "worst lat [ns]", "worst E [fJ]");
  for (double vdd : {0.9, 1.0, 1.1, 1.2, 1.3, 1.4}) {
    Technology tech = Technology::table1();
    tech.vdd = vdd;
    Characterizer chr(tech);
    chr.timestep = 5e-12;
    const WriteResult typ = chr.proposed_write(Corner::Typical, true, false);
    const WriteResult worst = chr.proposed_write(Corner::Worst, true, false);
    auto cell = [](const WriteResult& w) {
      return w.switched ? format("%14.2f", w.latency * 1e9)
                        : std::string("          FAIL");
    };
    std::printf("%8.2f | %s %14.1f | %s %14.1f\n", vdd, cell(typ).c_str(),
                typ.energy * 1e15, cell(worst).c_str(), worst.energy * 1e15);
  }
  std::printf(
      "\nreading: the store fails outright below ~1.0 V (series MTJ resistance\n"
      "caps the current under the critical value) and the worst-corner latency\n"
      "only meets the paper's 2 ns at elevated supply — quantifying why real\n"
      "STT designs add write-assist boosting, and why the paper's write path\n"
      "is kept untouched and identical in both designs.\n");
  return 0;
}
