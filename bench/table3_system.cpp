// Regenerates Table III: the full system-level flow (generate -> place ->
// pair -> replace -> roll up) over all 13 benchmarks.
//
// Two roll-up modes are printed:
//  * paper cell values (validates placement/pairing against the published
//    rows: identical arithmetic, our pair counts), and
//  * measured cell values (the fully self-contained reproduction where even
//    the per-cell area/energy come from our analog engine + layout model).
#include <cstdio>
#include <fstream>

#include "core/reports.hpp"
#include "util/log.hpp"

int main() {
  using namespace nvff;
  set_log_level(LogLevel::Info);

  // Pass 1: paper cell values.
  std::vector<core::FlowReport> reports;
  for (const auto& spec : bench::paper_benchmarks()) {
    reports.push_back(core::run_flow(spec));
  }
  std::printf("%s\n", core::render_table3(reports).c_str());

  std::ofstream csv("table3.csv");
  csv << core::table3_csv(reports);
  std::printf("(machine-readable rows written to table3.csv)\n\n");

  // Pass 2: measured cell values (re-uses the same pairing results; only the
  // roll-up constants change).
  cell::Characterizer chr;
  chr.timestep = 2e-12;
  const core::NvCellSet measured = core::NvCellSet::measured(chr);
  std::printf("measured cell values: std 1-bit %.3f um^2 / %.3f fJ per bit, "
              "proposed 2-bit %.3f um^2 / %.3f fJ\n",
              measured.standard1bit.areaUm2, measured.standard1bit.readEnergyJ * 1e15,
              measured.proposed2bit.areaUm2, measured.proposed2bit.readEnergyJ * 1e15);
  std::printf("\nTable III with MEASURED cell values (self-contained reproduction):\n");
  std::printf("%-8s %10s %10s %12s %12s\n", "bench", "pairs", "frac", "area impr",
              "energy impr");
  double areaAvg = 0.0;
  double energyAvg = 0.0;
  for (auto& r : reports) {
    const core::RollUp roll = core::roll_up(r.totalFlipFlops, r.pairs, measured);
    const double aImpr = improvement_percent(roll.areaStd, roll.areaProp);
    const double eImpr = improvement_percent(roll.energyStd, roll.energyProp);
    areaAvg += aImpr;
    energyAvg += eImpr;
    std::printf("%-8s %10zu %9.0f%% %11.2f%% %11.2f%%\n", r.benchmark.c_str(), r.pairs,
                100.0 * r.pairedFraction, aImpr, eImpr);
  }
  areaAvg /= static_cast<double>(reports.size());
  energyAvg /= static_cast<double>(reports.size());
  std::printf("average: area %.1f%% (paper 26%%), energy %.1f%% (paper 14%%)\n",
              areaAvg, energyAvg);
  return 0;
}
