// Regenerates Fig. 7: the simplified controlling mechanism. Compares the
// naive scheme (PC_VDD, PC_GND, SEL, P3 routed separately) against the
// optimized single-PC scheme (external nets: PC + Ren only; everything else
// derived locally) on externally routed control nets and their transitions
// per restore. Also verifies the applied gate waveforms restore correctly.
#include <cstdio>

#include "cell/characterize.hpp"
#include "cell/multibit_latch.hpp"
#include "spice/trace.hpp"
#include "util/units.hpp"

int main() {
  using namespace nvff;
  using namespace nvff::units;
  using namespace nvff::cell;

  const Technology tech = Technology::table1();
  const TechCorner corner = tech.read_corner(Corner::Typical);
  TwoBitReadTiming timing{};
  auto inst = MultibitNvLatch::build_read(tech, corner, true, false, timing);

  spice::Trace trace;
  for (const char* node : {"pcvb", "pcg", "ren", "p3b", "p4b", "n4"}) {
    trace.watch_node(inst.circuit, node);
  }
  spice::Simulator sim(inst.circuit);
  spice::TransientOptions opt;
  opt.tStop = inst.tEnd;
  opt.dt = 4 * ps;
  sim.transient(opt, trace.observer());

  std::printf("FIG 7 — control-scheme comparison for one 2-bit restore\n\n");
  std::printf("gate-level signal activity (measured transitions):\n");
  int naiveTransitions = 0;
  for (const char* node : {"pcvb", "pcg", "ren", "p3b", "p4b", "n4"}) {
    const int transitions = trace.count_transitions(node, tech.vdd);
    naiveTransitions += transitions;
    std::printf("  %-5s : %d transitions\n", node, transitions);
  }

  // Optimized scheme (Fig. 7): external control nets are just PC and Ren.
  //   PC covers both precharge windows (4 transitions); Ren covers both
  //   evaluation windows (4 transitions, measured above); P3/P4/N4 and the
  //   precharge polarity are derived inside the cell from PC, Ren and the
  //   phase state, so their toggles do not travel on global control routing.
  const int renTransitions = trace.count_transitions("ren", tech.vdd);
  const int pcTransitions = trace.count_transitions("pcvb", tech.vdd) +
                            trace.count_transitions("pcg", tech.vdd);
  const int optimizedTransitions = pcTransitions + renTransitions;

  std::printf("\nexternally routed control nets:\n");
  std::printf("  naive 3-signal scheme : 6 nets, %d transitions per restore\n",
              naiveTransitions);
  std::printf("  optimized PC scheme   : 2 nets (PC, Ren), %d transitions per "
              "restore\n",
              optimizedTransitions);
  std::printf("  reduction             : %.0f%% fewer external control transitions\n",
              100.0 * (naiveTransitions - optimizedTransitions) / naiveTransitions);

  // Functional equivalence: both schemes apply the same gate waveforms, so a
  // single characterization covers both. Verify the restore is correct.
  Characterizer chr;
  chr.timestep = 4e-12;
  bool allOk = true;
  for (int v = 0; v < 4; ++v) {
    allOk = allOk && chr.proposed_read(Corner::Typical, (v & 1) != 0, (v & 2) != 0)
                         .correct;
  }
  std::printf("\nfunctional equivalence across all data values: %s\n",
              allOk ? "PASS" : "FAIL");
  std::printf("(the paper's energy benefit of the scheme — fewer transitions on\n"
              "the heavily loaded control routing — is part of the Table II read\n"
              "energy advantage; see bench_table2_circuit)\n");
  return 0;
}
