// Regenerates Fig. 1 (MTJ cell behaviour) as data series: resistance vs
// bias for both orientations, and switching time vs write current.
#include <cstdio>
#include <initializer_list>

#include "mtj/model.hpp"
#include "util/units.hpp"

int main() {
  using namespace nvff;
  using namespace nvff::units;
  const mtj::MtjModel model(mtj::MtjParams::table1());

  std::printf("FIG 1a — MTJ resistance vs bias (TMR roll-off)\n");
  std::printf("%8s %12s %12s %8s\n", "V [V]", "R_P [Ohm]", "R_AP [Ohm]", "TMR");
  for (double v = 0.0; v <= 1.1001; v += 0.1) {
    std::printf("%8.2f %12.1f %12.1f %7.1f%%\n", v,
                model.resistance(mtj::MtjOrientation::Parallel, v),
                model.resistance(mtj::MtjOrientation::AntiParallel, v),
                100.0 * model.tmr(v));
  }

  std::printf("\nFIG 1b — STT switching time vs current (Sun + thermal regimes)\n");
  std::printf("%12s %16s %s\n", "I [uA]", "tau", "regime");
  for (double iUa : {5.0, 15.0, 25.0, 30.0, 35.0, 36.9, 38.0, 45.0, 55.0, 70.0,
                     90.0, 120.0}) {
    const double tau = model.switching_time(iUa * uA);
    const char* regime = (iUa * uA > model.params().iCritical) ? "precessional"
                                                               : "thermal";
    if (tau > 1.0) {
      std::printf("%12.1f %16s %s\n", iUa, "> 1 s", regime);
    } else {
      std::printf("%12.1f %13.3f ns %s\n", iUa, tau * 1e9, regime);
    }
  }
  std::printf("\ncalibration: tau(70 uA) = %.2f ns (paper: ~2 ns worst-case write)\n",
              model.switching_time(70 * uA) * 1e9);
  return 0;
}
