// EXTENSION — power-gating policy over a realistic idle-time distribution.
//
// SoC idle episodes are bursty: many short gaps, few long ones. This bench
// draws exponential idle times around several mean durations and compares
// three policies (retention always, gate always, gate-above-break-even),
// for both NV schemes — the decision the PD (power-down) controller of the
// paper's Fig. 2/3 has to make.
#include <cmath>
#include <cstdio>

#include "core/flow.hpp"
#include "core/standby.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

int main() {
  using namespace nvff;
  using namespace nvff::core;

  const FlowReport flow = run_flow(bench::find_benchmark("s13207"));
  cell::Characterizer chr;
  chr.timestep = 4e-12;
  const StandbyParams p = StandbyParams::from_measured(
      chr, cell::Corner::Typical, flow.totalFlipFlops, flow.pairs);
  const double breakEven = nv_break_even_seconds(p, true);

  std::printf("EXTENSION — gating-policy comparison, s13207 (%zu FFs, %zu pairs)\n",
              p.totalFfs, p.pairs);
  std::printf("multi-bit NV break-even: %s; 1000 exponential idle episodes per "
              "row\n\n",
              eng(breakEven, "s").c_str());
  std::printf("%14s %14s %14s %18s %12s\n", "mean idle", "never gate",
              "always gate", "threshold policy", "vs best naive");

  for (double meanIdle : {10e-6, 50e-6, 150e-6, 500e-6, 5e-3}) {
    Rng rng(static_cast<std::uint64_t>(meanIdle * 1e9));
    std::vector<double> episodes;
    for (int i = 0; i < 1000; ++i) {
      // Exponential draw via inverse CDF.
      episodes.push_back(-meanIdle * std::log(1.0 - rng.uniform()));
    }
    const double never =
        total_standby_energy(p, episodes, GatingPolicy::NeverGate, true);
    const double always =
        total_standby_energy(p, episodes, GatingPolicy::AlwaysGate, true);
    const double smart =
        total_standby_energy(p, episodes, GatingPolicy::BreakEvenThreshold, true);
    const double bestNaive = std::min(never, always);
    std::printf("%14s %14s %14s %18s %11.1f%%\n", eng(meanIdle, "s", 0).c_str(),
                eng(never, "J").c_str(), eng(always, "J").c_str(),
                eng(smart, "J").c_str(), 100.0 * (bestNaive - smart) / bestNaive);
  }
  std::printf(
      "\nreading: below the break-even the threshold policy degenerates to\n"
      "retention, far above it to always-gate; the win concentrates around the\n"
      "break-even, where the idle distribution straddles the threshold. The\n"
      "multi-bit cell lowers the NV fixed cost, pulling the threshold earlier\n"
      "and widening the always-gate region — the system-level payoff of the\n"
      "paper's restore-energy saving.\n");
  return 0;
}
