// EXTENSION — integration with CMOS multi-bit flip-flops (paper Sec III-E).
//
// The same FF pairs that share an NV shadow cell can also share the CMOS
// flip-flop's clock inverter pair (a standard MBFF). This bench combines the
// two effects per benchmark: NV-component area/restore-energy savings (the
// paper's Table III) plus clock-network capacitance/dynamic-power savings
// from the merged clock sinks.
#include <cstdio>

#include "core/clock_network.hpp"
#include "core/flow.hpp"
#include "util/stats.hpp"

int main() {
  using namespace nvff;
  using namespace nvff::core;

  const ClockModelParams clk;
  std::printf("EXTENSION — NV multi-bit cell inside a CMOS multi-bit flip-flop\n");
  std::printf("clock model: %.0f MHz, pin %.2f fF, wire %.2f fF/um, leaf fanout %d\n\n",
              clk.frequency / 1e6, clk.cPinClkFf * 1e15, clk.cWirePerUm * 1e15,
              clk.sinksPerLeafBuffer);
  std::printf("%-8s %7s %7s | %12s %12s %8s | %12s %12s %8s\n", "bench", "FFs",
              "pairs", "clkC 1b [fF]", "clkC MB [fF]", "saving", "clkP 1b [uW]",
              "clkP MB [uW]", "saving");

  RunningStats capSavings;
  RunningStats powerSavings;
  for (const char* name :
       {"s5378", "s13207", "s38584", "s35932", "b14", "b15", "b17", "or1200"}) {
    const FlowReport flow = run_flow(bench::find_benchmark(name));
    const auto single = estimate_clock_network(flow.ffSites, clk);
    const auto mbff = estimate_clock_network_mbff(flow.ffSites, flow.pairing, clk);
    const double capSave = improvement_percent(single.totalCapF(), mbff.totalCapF());
    const double powSave =
        improvement_percent(single.dynamicPowerW, mbff.dynamicPowerW);
    capSavings.add(capSave);
    powerSavings.add(powSave);
    std::printf("%-8s %7zu %7zu | %12.1f %12.1f %7.1f%% | %12.2f %12.2f %7.1f%%\n",
                name, flow.totalFlipFlops, flow.pairs, single.totalCapF() * 1e15,
                mbff.totalCapF() * 1e15, capSave, single.dynamicPowerW * 1e6,
                mbff.dynamicPowerW * 1e6, powSave);
  }
  std::printf("\naverage clock-network saving from MBFF merging of the SAME pairs\n"
              "the NV flow found: capacitance %.1f%%, dynamic power %.1f%% —\n"
              "on top of the paper's 26%%/14%% NV area/restore-energy savings,\n"
              "supporting Sec III-E's claim that the NV multi-bit component\n"
              "composes with industrial CMOS MBFF methodology.\n",
              capSavings.mean(), powerSavings.mean());
  return 0;
}
