// Ablation: sweep the pairing distance threshold. The paper fixes it at
// twice the standard NV-cell width (3.35 um) "so that there are no timing
// penalties"; this sweep shows what a looser/tighter rule would buy.
#include <cstdio>

#include "core/flow.hpp"
#include "util/stats.hpp"

int main() {
  using namespace nvff;

  const char* names[] = {"s344", "s5378", "s35932", "b15"};
  std::printf("ABLATION — pairing threshold sweep (area improvement %% / pairs)\n\n");
  std::printf("%10s", "thr [um]");
  for (const char* n : names) std::printf(" %18s", n);
  std::printf("\n");

  for (double threshold : {1.0, 1.68, 2.5, 3.35, 4.5, 6.0, 10.0}) {
    std::printf("%10.2f", threshold);
    for (const char* n : names) {
      core::FlowOptions opt;
      opt.pairing.maxDistance = threshold;
      const core::FlowReport r = core::run_flow(bench::find_benchmark(n), opt);
      std::printf("     %6.2f%% / %-5zu", r.areaImprovementPct, r.pairs);
    }
    std::printf("\n");
  }
  std::printf("\nnote: 3.35 um is the paper's operating point; beyond it the gains\n"
              "saturate (most FFs already merged) while the merged cell would span\n"
              "more than its own footprint, i.e. timing/legalization penalties.\n");
  return 0;
}
