// EXTENSION — Monte-Carlo yield of both latch designs (EXPERIMENTS.md
// "Monte-Carlo yield" section regenerator).
//
// The paper evaluates variation at the ±3σ corner points only (Sec. IV-A);
// this bench samples the space between them: every trial runs the complete
// store -> power-off -> restore cycle for both designs at an independently
// drawn process point (per-pillar MTJ parameters, global corner jitter,
// per-transistor Vth mismatch), classifies the outcome, and the campaign
// reports bit-error rate, yield and the read-margin distribution, plus a
// yield-vs-sigma sweep showing where each design's margin collapses.
//
//   bench_extension_montecarlo [trials] [threads] [seed]
//
// Output is deterministic for a given (trials, seed) at any thread count.
#include <cstdio>
#include <cstdlib>

#include "reliability/montecarlo.hpp"

using namespace nvff;

int main(int argc, char** argv) {
  reliability::CampaignConfig cfg;
  cfg.trials = argc > 1 ? std::atoi(argv[1]) : 96;
  cfg.threads = argc > 2 ? std::atoi(argv[2]) : 4;
  cfg.seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2018;

  std::printf("EXTENSION — Monte-Carlo reliability of the NV latch designs\n\n");
  const reliability::CampaignResult result = reliability::run_campaign(cfg);
  std::printf("%s\n", reliability::render_report(result).c_str());

  // Sweep the MTJ spread multiplier: the shared-sense-amp design's margin
  // erodes faster (four pillars and a two-phase read share one amplifier),
  // which is the reliability price of the paper's area/energy win.
  reliability::CampaignConfig sweepCfg = cfg;
  sweepCfg.trials = cfg.trials / 2;
  const auto rows =
      reliability::sigma_sweep(sweepCfg, {0.5, 1.0, 1.5, 2.0, 2.5});
  std::printf("%s", reliability::render_sigma_sweep(rows).c_str());

  long unclassified = 0;
  for (const auto& t : result.trials) {
    unclassified +=
        (t.standard.outcome == reliability::TrialOutcome::Unclassified) +
        (t.proposed.outcome == reliability::TrialOutcome::Unclassified);
  }
  if (unclassified > 0) {
    std::fprintf(stderr, "unclassified design-trials: %ld (harness bug)\n",
                 unclassified);
    return 1;
  }
  return 0;
}
