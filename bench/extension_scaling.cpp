// EXTENSION — design scalability of the proposed architecture (paper Sec.
// III mentions scalability; this quantifies it).
//
// Part A: cell-level scaling of the generalized N-bit latch (one shared
// sense amplifier, N/2 MTJ pairs above + N/2 below with per-pair selects).
// Part B: system level — hierarchical replacement (fill N-bit groups, pair
// the leftovers with the paper's 2-bit cell, keep the rest 1-bit) on real
// benchmark placements, under the wake-up latency budget (~120 ns, the
// STT-microcontroller wake-up the paper cites [30]).
#include <cstdio>

#include "cell/layout.hpp"
#include "cell/scalable_latch.hpp"
#include "core/flow.hpp"
#include "pairing/grouping.hpp"
#include "util/stats.hpp"

using namespace nvff;
using namespace nvff::cell;

namespace {

struct CellPoint {
  int bits;
  ScalableMetrics metrics;
};

double scalable_group_budget_um(int bits) {
  // Distance budget for an N-bit group = the merged cell's own width plus
  // the spacing margin (generalizing the paper's 2x-standard-width rule).
  return CellLayout("tmp", scalable_read_transistors(bits),
                    scalable_mtj_count(bits))
             .width_um() +
         LayoutParams{}.minSpacingUm;
}

} // namespace

int main() {
  std::printf("EXTENSION — scalability of the shared-sense-amplifier latch\n\n");

  // --- Part A: cell-level scaling ---------------------------------------------
  std::printf("Part A: generalized N-bit cell (scalable select structure)\n");
  std::printf("%5s %6s %10s %10s %12s %12s %12s %11s %6s\n", "bits", "xtors",
              "area um^2", "um^2/bit", "restoreE fJ", "fJ/bit", "restore ns",
              "leak pW", "func");
  std::vector<CellPoint> points;
  for (int bits : {2, 4, 6, 8}) {
    const ScalableMetrics m =
        characterize_scalable(Technology::table1(), Corner::Typical, bits, 4e-12);
    points.push_back({bits, m});
    std::printf("%5d %6d %10.3f %10.3f %12.2f %12.2f %12.2f %11.0f %6s\n", bits,
                m.readTransistors, m.areaUm2, m.areaUm2 / bits, m.readEnergy * 1e15,
                m.readEnergy * 1e15 / bits, m.restoreWallClock * 1e9,
                m.leakage * 1e12, m.functional ? "PASS" : "FAIL");
  }
  std::printf("reference: 1-bit standard %.3f um^2/bit; hand-optimized 2-bit cell "
              "%.3f um^2/bit (paper)\n\n",
              standard_per_bit_area_um2(), proposed_2bit_area_um2() / 2);

  const double wakeBudget = 120e-9;
  for (const auto& p : points) {
    if (p.metrics.restoreWallClock > wakeBudget) {
      std::printf("NOTE: %d-bit restore (%.1f ns) exceeds the %.0f ns wake budget\n",
                  p.bits, p.metrics.restoreWallClock * 1e9, wakeBudget * 1e9);
    }
  }
  std::printf("all shown restore sequences fit comfortably inside the %.0f ns "
              "system wake-up window.\n\n",
              wakeBudget * 1e9);

  // --- Part B: hierarchical system-level replacement ---------------------------
  std::printf("Part B: hierarchical replacement on benchmark placements\n");
  std::printf("(fill N-bit groups, 2-bit pair the rest, singles last; NV area "
              "per benchmark)\n\n");
  std::printf("%-8s %14s %14s %14s %14s\n", "bench", "all 1-bit", "2-bit (paper)",
              "up to 4-bit", "up to 8-bit");

  const double area1 = 2.817; // paper's per-bit standard value (Table III)
  const double area2 = proposed_2bit_area_um2();
  const double area4 =
      CellLayout("s4", scalable_read_transistors(4), scalable_mtj_count(4)).area_um2();
  const double area8 =
      CellLayout("s8", scalable_read_transistors(8), scalable_mtj_count(8)).area_um2();

  for (const char* name : {"s5378", "s13207", "s35932", "b15", "b17", "or1200"}) {
    const core::FlowReport flow = core::run_flow(bench::find_benchmark(name));
    const auto& sites = flow.ffSites;
    const double base = static_cast<double>(flow.totalFlipFlops) * area1;
    const double paper2 = flow.areaProp;

    auto hierarchical = [&](int maxBits) {
      std::vector<char> used(sites.size(), 0);
      double area = 0.0;
      // Big groups first.
      for (int bits = maxBits; bits >= 4; bits -= 4) {
        std::vector<pairing::FlipFlopSite> free;
        std::vector<int> map;
        for (std::size_t i = 0; i < sites.size(); ++i) {
          if (!used[i]) {
            free.push_back(sites[i]);
            map.push_back(static_cast<int>(i));
          }
        }
        pairing::GroupingOptions gopt;
        gopt.groupSize = bits;
        gopt.maxDistance = scalable_group_budget_um(bits);
        gopt.requireFull = true;
        const auto groups = pairing::group_flip_flops(free, gopt);
        for (const auto& g : groups.groups) {
          for (int m : g.members) used[static_cast<std::size_t>(map[m])] = 1;
          area += (bits == 8) ? area8 : area4;
        }
      }
      // Pair the leftovers with the paper's 2-bit cell.
      std::vector<pairing::FlipFlopSite> free;
      for (std::size_t i = 0; i < sites.size(); ++i) {
        if (!used[i]) free.push_back(sites[i]);
      }
      pairing::PairingOptions popt;
      popt.maxDistance = cell::pairing_distance_threshold_um();
      const auto pairs = pairing::pair_flip_flops(free, popt);
      area += static_cast<double>(pairs.num_pairs()) * area2;
      area += static_cast<double>(pairs.unmatched.size()) * area1;
      return area;
    };

    const double up4 = hierarchical(4);
    const double up8 = hierarchical(8);
    std::printf("%-8s %11.0f    %9.0f (%4.1f%%) %8.0f (%4.1f%%) %8.0f (%4.1f%%)\n",
                name, base, paper2, improvement_percent(base, paper2), up4,
                improvement_percent(base, up4), up8, improvement_percent(base, up8));
  }
  std::printf(
      "\nconclusions:\n"
      " * area amortizes well: 4-bit sharing buys a further ~5-9%% of NV area,\n"
      "   8-bit another ~5-10%% on register-dense designs (per-bit cell area\n"
      "   2.05 -> 1.28 um^2 from 2 to 8 bits);\n"
      " * restore ENERGY does not amortize (flat ~11.5 fJ/bit): every bit still\n"
      "   pays its own precharge + evaluation, so the energy benefit of sharing\n"
      "   saturates at the 2-bit cell — a quantitative reason the paper's\n"
      "   hand-optimized 2-bit design is the sweet spot when energy matters;\n"
      " * restore latency grows linearly (0.8 ns/bit) but stays far below the\n"
      "   ~120 ns wake-up budget even at 8 bits.\n");
  return 0;
}
