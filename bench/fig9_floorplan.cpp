// Regenerates Fig. 9: the placed floorplan of s344 with mergeable flip-flop
// pairs marked, plus the DEF artifact the pairing script consumed.
#include <cstdio>

#include "core/flow.hpp"
#include "core/reports.hpp"
#include "physdes/def_io.hpp"

int main(int argc, char** argv) {
  using namespace nvff;
  const char* name = argc > 1 ? argv[1] : "s344";
  const core::FlowReport report = core::run_flow(bench::find_benchmark(name));

  std::printf("FIG 9 — floorplan of %s after placement\n\n", name);
  std::printf("%s\n", core::render_floorplan(report, 100, 34).c_str());

  std::printf("flip-flop pairs within %.2f um (merged into 2-bit NV cells):\n", 3.35);
  for (const auto& p : report.pairing.pairs) {
    std::printf("  %-10s <-> %-10s  %.2f um apart\n",
                report.ffSites[static_cast<std::size_t>(p.a)].name.c_str(),
                report.ffSites[static_cast<std::size_t>(p.b)].name.c_str(),
                p.distance);
  }
  std::printf("unmatched flip-flops (keep standard 1-bit NV cell):");
  for (int idx : report.pairing.unmatched) {
    std::printf(" %s", report.ffSites[static_cast<std::size_t>(idx)].name.c_str());
  }
  std::printf("\n\npair distance stats: mean %.2f um, max %.2f um over %zu pairs\n",
              report.pairing.pairDistances.mean(), report.pairing.pairDistances.max(),
              report.pairs);

  // The DEF artifact (first lines) — this is what the merging script parses.
  const std::string def = physdes::to_def(report.placement, report.circuit.netlist);
  std::printf("\nDEF artifact (head):\n");
  std::size_t lines = 0;
  std::size_t pos = 0;
  while (lines < 12 && pos < def.size()) {
    const std::size_t nl = def.find('\n', pos);
    std::printf("  %s\n", def.substr(pos, nl - pos).c_str());
    pos = nl + 1;
    ++lines;
  }
  std::printf("  ... (%zu bytes total)\n", def.size());
  return 0;
}
