// EXTENSION — sense-amplifier offset (local Vth mismatch) yield study.
//
// The paper's reliability argument rests on a differential sense: local
// within-die variation of the cross-coupled pair creates an input-referred
// offset that eats into the MTJ sense window. This bench sweeps the
// per-transistor sigma(Vth) and reports restore yield for both designs —
// the proposed 2-bit cell senses the upper pair through T-gates and the
// P3/P4 path, so its offset exposure differs from the standard PCSA's.
#include <cstdio>

#include "cell/characterize.hpp"
#include "util/rng.hpp"

int main() {
  using namespace nvff;
  using namespace nvff::cell;

  Characterizer chr;
  chr.timestep = 4e-12;
  const TechCorner tc = chr.technology().read_corner(Corner::Typical);
  const TechCorner worstTc = chr.technology().read_corner(Corner::Worst);

  const int samples = 40;
  std::printf("MISMATCH — restore yield vs per-transistor sigma(Vth), %d Monte-"
              "Carlo netlists per point\n\n",
              samples);
  std::printf("%12s %18s %18s %22s\n", "sigma [mV]", "std yield", "2-bit yield",
              "2-bit yield @worst");

  for (double sigmaMv : {0.0, 10.0, 20.0, 30.0, 45.0, 60.0}) {
    const double sigma = sigmaMv * 1e-3;
    int stdPass = 0;
    int propPass = 0;
    int propWorstPass = 0;
    Rng rng(static_cast<std::uint64_t>(1000 + sigmaMv));
    for (int i = 0; i < samples; ++i) {
      const bool b0 = (i & 1) != 0;
      const bool b1 = (i & 2) != 0;
      if (chr.standard_read_at(tc, b0, &rng, sigma).correct) ++stdPass;
      if (chr.proposed_read_at(tc, b0, b1, &rng, sigma).correct) ++propPass;
      if (chr.proposed_read_at(worstTc, b0, b1, &rng, sigma).correct) {
        ++propWorstPass;
      }
    }
    std::printf("%12.0f %13d/%d %13d/%d %17d/%d\n", sigmaMv, stdPass, samples,
                propPass, samples, propWorstPass, samples);
  }

  std::printf(
      "\nreading: both designs tolerate realistic 40 nm mismatch (sigma ~20-30 mV\n"
      "for near-minimum devices) because the MTJ window (R_AP/R_P > 2) dwarfs\n"
      "the offset; yield only degrades when sigma approaches the overdrive of\n"
      "the sense devices. The worst corner (weak TMR window) loses margin\n"
      "first — consistent with the paper's +-3 sigma corner methodology.\n");
  return 0;
}
