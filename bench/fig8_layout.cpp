// Regenerates Fig. 8: the 12-track layout of the proposed 2-bit NV cell
// (track-map rendering of the analytic layout model) plus the cell-area
// comparison the layouts were drawn for.
#include <cstdio>

#include "cell/layout.hpp"
#include "util/stats.hpp"

int main() {
  using namespace nvff;
  using namespace nvff::cell;

  std::printf("FIG 8 — layout model of the NV cells (12-track, up to M2)\n\n");
  std::printf("%s\n", proposed_2bit_layout().track_map().c_str());
  std::printf("%s\n", standard_1bit_layout().track_map().c_str());

  const double stdPair = standard_pair_area_um2();
  const double prop = proposed_2bit_area_um2();
  std::printf("cell-area comparison (paper Table II):\n");
  std::printf("  two standard 1-bit cells + spacing : %.3f um^2 (paper 5.635)\n",
              stdPair);
  std::printf("  proposed 2-bit cell                : %.3f um^2 (paper 3.696)\n",
              prop);
  std::printf("  cell-level area improvement        : %.1f%% (paper ~34%%)\n",
              improvement_percent(stdPair, prop));
  std::printf("  pairing distance threshold         : %.2f um (paper <= 3.35 um)\n",
              pairing_distance_threshold_um());
  return 0;
}
