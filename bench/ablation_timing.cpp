// EXTENSION — validating the "no timing penalties" threshold rule.
//
// The paper limits pairing to flip-flops closer than 3.35 um so the merge
// causes no timing penalty, but does not quantify it. Here: for a sweep of
// thresholds, pair at that distance, physically move each pair to its
// midpoint (what the merged cell does), and re-run STA. The penalty is the
// critical-path increase.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/flow.hpp"
#include "physdes/sta.hpp"

int main() {
  using namespace nvff;
  using namespace nvff::physdes;

  std::printf("EXTENSION — timing penalty of flip-flop merging vs threshold\n");
  const StaOptions sta;
  std::printf("(linear delay model, %.0f ps clock; penalty = critical-path "
              "increase after moving pairs to their midpoints)\n\n",
              sta.clockPeriodPs);
  std::printf("%10s", "thr [um]");
  const char* names[] = {"s5378", "s13207", "b15"};
  for (const char* n : names) std::printf(" %24s", n);
  std::printf("\n");

  for (double threshold : {1.68, 3.35, 6.0, 12.0, 25.0}) {
    std::printf("%10.2f", threshold);
    for (const char* n : names) {
      core::FlowOptions opt;
      opt.pairing.maxDistance = threshold;
      const core::FlowReport r = core::run_flow(bench::find_benchmark(n), opt);
      const auto& nl = r.circuit.netlist;
      const TimingReport before = analyze_timing(nl, r.placement, sta);
      std::vector<std::pair<int, int>> pairs;
      for (const auto& p : r.pairing.pairs) pairs.emplace_back(p.a, p.b);
      const Placement moved = apply_pair_displacement(r.placement, nl, pairs);
      const TimingReport after = analyze_timing(nl, moved, sta);

      // Worst per-endpoint degradation: every FF capture path, before vs
      // after the displacement (the global critical path alone hides the
      // effect when it avoids the moved cells).
      auto capture = [&](const TimingReport& rep, const Placement& pl,
                         bench::GateId ff) {
        const bench::GateId d = nl.gate(ff).fanin[0];
        const double wirePs =
            sta.wirePsPerUm * (std::fabs(pl.cx(d) - pl.cx(ff)) +
                               std::fabs(pl.cy(d) - pl.cy(ff)));
        return rep.arrivalPs[static_cast<std::size_t>(d)] + wirePs + sta.setupPs;
      };
      double worstDelta = 0.0;
      for (bench::GateId ff : nl.flip_flops()) {
        worstDelta = std::max(worstDelta, capture(after, moved, ff) -
                                              capture(before, r.placement, ff));
      }
      const double penalty = after.criticalPathPs - before.criticalPathPs;
      std::printf("   crit %+5.1f ps, ep %+6.1f ps", penalty, worstDelta);
    }
    std::printf("\n");
  }
  std::printf(
      "\nreading: 'crit' is the global critical-path change (essentially zero —\n"
      "critical paths rarely route through a moved flip-flop); 'ep' is the\n"
      "worst single-endpoint slowdown. At the paper's 3.35 um threshold the\n"
      "worst endpoint slows by only ~4 ps — 0.2%% of the 2 ns clock — which is\n"
      "what \"no timing penalties\" means quantitatively. The endpoint penalty\n"
      "grows with the threshold (14+ ps at 25 um), which is why the rule is\n"
      "tied to twice the NV-cell width and not to a larger radius.\n");
  return 0;
}
