// Regenerates the Fig. 4 story: the standard latch (Fig. 2b), the flipped
// latch with the MTJs above the read component (Fig. 4a), and how combining
// them yields the 2-bit cell (Fig. 4b) — with measured numbers for each,
// plus the NV-safety margins the architecture relies on (retention time and
// read-disturb margin).
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "cell/characterize.hpp"
#include "cell/flipped_latch.hpp"
#include "spice/analysis.hpp"
#include "spice/trace.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

using namespace nvff;
using namespace nvff::cell;
using namespace nvff::units;

namespace {

struct OneBit {
  double energy = 0.0;
  double delay = 0.0;
  bool ok = true;
  double peakReadCurrent = 0.0; ///< worst |I| through an MTJ during restore
};

OneBit measure_flipped(bool bit) {
  const Technology tech = Technology::table1();
  const TechCorner tc = tech.read_corner(Corner::Typical);
  ReadTiming timing{};
  auto inst = FlippedNvLatch::build_read(tech, tc, bit, timing);
  spice::Trace trace;
  trace.watch_node(inst.circuit, "out");
  trace.watch_node(inst.circuit, "outb");
  spice::SupplyEnergyMeter meter(inst.circuit, "VDD");
  spice::Simulator sim(inst.circuit);
  spice::TransientOptions opt;
  opt.tStop = inst.tEnd;
  opt.dt = 2 * ps;
  OneBit r;
  auto obs = trace.observer();
  spice::Solution zero(std::vector<double>(inst.circuit.num_unknowns(), 0.0),
                       inst.circuit.num_nodes());
  sim.transient_from(zero, opt, [&](double t, const spice::Solution& s) {
    obs(t, s);
    meter.observe(t, s);
    const auto state = s.as_state(t);
    r.peakReadCurrent = std::max(
        {r.peakReadCurrent, std::fabs(inst.mtjOut->current(state)),
         std::fabs(inst.mtjOutb->current(state))});
  });
  r.energy = meter.energy();
  const std::string rising = bit ? "out" : "outb";
  const auto tc2 =
      trace.crossing_time(rising, 0.9 * tech.vdd, spice::Edge::Rising, inst.tEvalStart);
  r.delay = tc2 ? *tc2 - inst.tEvalStart : -1;
  r.ok = (trace.value_at("out", inst.tEnd) > tech.vdd / 2) == bit;
  return r;
}

} // namespace

int main() {
  Characterizer chr;
  chr.timestep = 2e-12;

  std::printf("FIG 4 — the three latch organizations, measured (typical)\n\n");
  const ReadResult std0 = chr.standard_read(Corner::Typical, false);
  const ReadResult std1 = chr.standard_read(Corner::Typical, true);
  const OneBit fl0 = measure_flipped(false);
  const OneBit fl1 = measure_flipped(true);
  const LatchMetrics prop = chr.proposed_2bit(Corner::Typical);

  std::printf("%-34s %12s %12s %10s\n", "design", "energy/bit", "delay/bit", "func");
  std::printf("%-34s %9.2f fJ %9.0f ps %10s\n", "standard (Fig 2b, MTJs below)",
              0.5 * (std0.energy + std1.energy) * 1e15,
              0.5 * (std0.delay + std1.delay) * 1e12,
              (std0.correct && std1.correct) ? "PASS" : "FAIL");
  std::printf("%-34s %9.2f fJ %9.0f ps %10s\n", "flipped (Fig 4a, MTJs above)",
              0.5 * (fl0.energy + fl1.energy) * 1e15,
              0.5 * (fl0.delay + fl1.delay) * 1e12,
              (fl0.ok && fl1.ok) ? "PASS" : "FAIL");
  std::printf("%-34s %9.2f fJ %9.0f ps %10s\n", "combined 2-bit (Fig 4b/5)",
              0.5 * prop.readEnergy * 1e15, 0.5 * prop.readDelay * 1e12,
              prop.functional ? "PASS" : "FAIL");
  std::printf("\nthe combination shares one sense amplifier between the two\n"
              "orientations: 11 + 11 = 22 transistors collapse to 16 (Table II).\n");

  // --- non-volatility margins ---------------------------------------------------
  const mtj::MtjModel model(mtj::MtjParams::table1());
  std::printf("\nNV safety margins (Table I device):\n");
  std::printf("  retention time at Delta = %.0f          : %.1e years\n",
              model.params().thermalStability,
              model.retention_time() / (365.25 * 24 * 3600));
  const double peak = std::max({fl0.peakReadCurrent, fl1.peakReadCurrent});
  std::printf("  peak read current through an MTJ       : %s (Ic = 37 uA)\n",
              eng(peak, "A", 1).c_str());
  std::printf("  disturb time at that current           : %s\n",
              model.switching_time(peak) > 1.0
                  ? "> 1 s  (vs a ~ns read: no disturb)"
                  : eng(model.switching_time(peak), "s").c_str());
  std::printf("\nretention vs thermal stability Delta:\n");
  for (double delta : {40.0, 50.0, 60.0, 70.0}) {
    mtj::MtjParams p = mtj::MtjParams::table1();
    p.thermalStability = delta;
    const mtj::MtjModel m(p);
    std::printf("  Delta %.0f : %.2e years\n", delta,
                m.retention_time() / (365.25 * 24 * 3600));
  }
  return 0;
}
