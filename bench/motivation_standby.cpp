// MOTIVATION (paper Sec. I) — why normally-off: standby-scheme comparison.
//
// Sweeps the standby duration and prints the energy of retention rails,
// memory save+restore (ref [4]), and the two NV shadow schemes, plus the
// break-even points — the quantitative version of the paper's introduction.
#include <cstdio>

#include "core/flow.hpp"
#include "core/standby.hpp"
#include "util/strings.hpp"

int main() {
  using namespace nvff;
  using namespace nvff::core;

  const char* benchName = "s13207";
  const FlowReport flow = run_flow(bench::find_benchmark(benchName));

  cell::Characterizer chr;
  chr.timestep = 4e-12;
  StandbyParams p = StandbyParams::from_measured(chr, cell::Corner::Typical,
                                                 flow.totalFlipFlops, flow.pairs);
  // Ref [4]-style save+restore keeps a small SRAM array powered.
  p.memoryArrayLeakageW = 50e-9;

  std::printf("MOTIVATION — standby energy per episode, %s (%zu FFs, %zu merged "
              "pairs)\n\n",
              benchName, p.totalFfs, p.pairs);
  std::printf("%12s %16s %16s %16s %16s\n", "standby", "retention", "save+restore",
              "NV 1-bit", "NV multi-bit");
  for (double t : {1e-6, 10e-6, 100e-6, 1e-3, 10e-3, 100e-3, 1.0}) {
    const StandbyEnergies e = standby_energy(p, t);
    std::printf("%12s %16s %16s %16s %16s\n", eng(t, "s", 0).c_str(),
                eng(e.retentionJ, "J").c_str(), eng(e.saveRestoreJ, "J").c_str(),
                eng(e.nvShadow1bitJ, "J").c_str(),
                eng(e.nvShadowMultibitJ, "J").c_str());
  }
  std::printf("\nbreak-even vs retention: NV 1-bit at %s, NV multi-bit at %s\n",
              eng(nv_break_even_seconds(p, false), "s").c_str(),
              eng(nv_break_even_seconds(p, true), "s").c_str());
  std::printf("(NV cost is store+restore only — zero during the gated interval —\n"
              "so it flattens while retention and the powered memory array keep\n"
              "paying leakage; the multi-bit cell moves the break-even earlier by\n"
              "cutting the restore term.)\n");
  return 0;
}
